"""The Sternberg partitioned architecture (SPA) design model — sections 5, 6.2.

The lattice is cut into ``L/W`` columnar slices of width ``W``.  Each
chip processes ``P_w`` slices, pipelined on-chip to depth ``P_k``, so a
chip carries ``P = P_w · P_k`` processing elements.  Adjacent slices
exchange ``E`` bits per update through synchronous side channels to
complete neighborhoods split across a slice boundary.

System parameters (section 6.2)::

    N = (L / (W P_w)) * (k / P_k)   chips
    R = F * k * (L / W)             site updates / second

Chip constraints::

    2 D P_w + 2 E P_k        <= Π   (pins: slice streams + side channels)
    ((2W + 9) B + Γ) P_w P_k <= 1   (area: per-PE delay of 2 slice-lines)

Maximizing ``P = P_w P_k`` under the pin constraint gives the split
``P_w = Π/4D, P_k = Π/4E`` (AM–GM corner), i.e. P = Π²/(16 D E) = 13.5
for the paper's constants; the area constraint then caps the slice width
at W ≈ 43.  The best *integer* design is P_w = 2, P_k = 6 → 12 PEs/chip,
the "twelve processors per chip" of section 6.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.design_space import DesignCurve, DesignPoint, sample_curve
from repro.core.technology import ChipTechnology, PAPER_TECHNOLOGY
from repro.util.validation import check_positive

__all__ = ["SPADesign", "SPAModel"]


@dataclass(frozen=True)
class SPADesign:
    """A concrete SPA machine: technology + (W, P_w, P_k) + system (L, k).

    Attributes
    ----------
    technology:
        Chip constants.
    slice_width:
        W — lattice columns per slice.
    pes_wide:
        P_w — slices processed per chip.
    pes_deep:
        P_k — on-chip pipeline depth per slice.
    lattice_size:
        L — lattice edge (the machine needs L/W slices).
    pipeline_depth:
        k — total pipeline depth per slice across all chips
        (= generations advanced per pass); must be a multiple of P_k
        for a whole number of chip ranks.
    """

    technology: ChipTechnology
    slice_width: int
    pes_wide: int
    pes_deep: int
    lattice_size: int
    pipeline_depth: int | None = None

    def __post_init__(self) -> None:
        check_positive(self.slice_width, "slice_width", integer=True)
        check_positive(self.pes_wide, "pes_wide", integer=True)
        check_positive(self.pes_deep, "pes_deep", integer=True)
        check_positive(self.lattice_size, "lattice_size", integer=True)
        if self.pipeline_depth is None:
            object.__setattr__(self, "pipeline_depth", self.pes_deep)
        check_positive(self.pipeline_depth, "pipeline_depth", integer=True)

    # -- chip-level accounting --------------------------------------------------

    @property
    def pes_per_chip(self) -> int:
        """P = P_w · P_k."""
        return self.pes_wide * self.pes_deep

    @property
    def storage_sites_per_pe(self) -> int:
        """Delay cells per PE: 2W + 9 (two slice-lines plus the window)."""
        return 2 * self.slice_width + 9

    @property
    def chip_area_used(self) -> float:
        """Normalized area: ((2W + 9) B + Γ) · P_w · P_k."""
        t = self.technology
        return (self.storage_sites_per_pe * t.B + t.Gamma) * self.pes_per_chip

    @property
    def pins_used(self) -> int:
        """2 D P_w + 2 E P_k."""
        t = self.technology
        return 2 * t.D * self.pes_wide + 2 * t.E * self.pes_deep

    def is_feasible(self) -> bool:
        """Whether the chip meets both pin and area constraints."""
        return (
            self.pins_used <= self.technology.Pi and self.chip_area_used <= 1.0 + 1e-12
        )

    def infeasibility_reasons(self) -> list[str]:
        """Which constraints the design violates (empty when feasible)."""
        reasons = []
        if self.pins_used > self.technology.Pi:
            reasons.append(f"pins: {self.pins_used} > Π={self.technology.Pi}")
        if self.chip_area_used > 1.0 + 1e-12:
            reasons.append(f"area: {self.chip_area_used:.4f} > 1")
        return reasons

    # -- system-level accounting --------------------------------------------------

    @property
    def num_slices(self) -> int:
        """Slices needed to cover the lattice: ⌈L / W⌉."""
        return math.ceil(self.lattice_size / self.slice_width)

    @property
    def num_chips(self) -> float:
        """N = (L / (W P_w)) · (k / P_k).

        Fractional when the slice or rank counts do not divide evenly;
        :meth:`num_chips_integer` rounds up per the physical machine.
        """
        return (self.lattice_size / (self.slice_width * self.pes_wide)) * (
            self.pipeline_depth / self.pes_deep
        )

    @property
    def num_chips_integer(self) -> int:
        """N with whole chips: ⌈slices / P_w⌉ · ⌈k / P_k⌉."""
        chips_wide = math.ceil(self.num_slices / self.pes_wide)
        ranks = math.ceil(self.pipeline_depth / self.pes_deep)
        return chips_wide * ranks

    @property
    def update_rate(self) -> float:
        """R = F · k · (L / W) site updates per second."""
        return (
            self.technology.F * self.pipeline_depth * self.lattice_size / self.slice_width
        )

    @property
    def throughput_per_chip(self) -> float:
        """R / N = F · P_w · P_k (the identity the paper verifies)."""
        return self.update_rate / self.num_chips

    @property
    def main_memory_bandwidth_bits_per_tick(self) -> float:
        """Every slice has its own stream: 2 D · (L / W) bits per tick.

        "each column of serial processors requires its own data path to
        and from main memory" — the expensive commodity the paper's
        conclusion warns about.
        """
        return 2.0 * self.technology.D * self.lattice_size / self.slice_width

    @property
    def main_memory_bandwidth_bits_per_tick_integer(self) -> int:
        """Bandwidth with a whole number of slices: 2 D · ⌈L/W⌉."""
        return 2 * self.technology.D * self.num_slices

    @property
    def main_memory_bandwidth_bytes_per_second(self) -> float:
        """Main-memory traffic at the configured clock, in bytes/s."""
        return self.main_memory_bandwidth_bits_per_tick * self.technology.F / 8.0

    @property
    def storage_area_per_pe(self) -> float:
        """Normalized chip area per processing element: (2W + 9)B + Γ.

        In units of B this is (2W + 9) + Γ/B ≈ 128.7 for the paper's
        constants — the "(128¾)B area per processor" of section 6.3.
        """
        t = self.technology
        return self.storage_sites_per_pe * t.B + t.Gamma


class SPAModel:
    """Design-space analysis of the SPA for a given technology."""

    def __init__(self, technology: ChipTechnology = PAPER_TECHNOLOGY):
        self.technology = technology

    # -- constraint curves ---------------------------------------------------------

    def pin_limit(self, slice_width: float = 0.0) -> float:
        """Largest P the pins allow with the optimal (P_w, P_k) split.

        max P_w P_k s.t. 2D P_w + 2E P_k <= Π  →  P = Π² / (16 D E),
        independent of W (the constant line in the paper's figure).
        """
        t = self.technology
        return t.Pi**2 / (16.0 * t.D * t.E)

    def optimal_split_continuous(self) -> tuple[float, float]:
        """(P_w, P_k) = (Π/4D, Π/4E) — the pin-optimal split."""
        t = self.technology
        return t.Pi / (4.0 * t.D), t.Pi / (4.0 * t.E)

    def area_limit(self, slice_width: float) -> float:
        """Largest P the area constraint allows at slice width W."""
        if slice_width < 0:
            raise ValueError(f"slice_width={slice_width} must be non-negative")
        t = self.technology
        return 1.0 / ((2.0 * slice_width + 9.0) * t.B + t.Gamma)

    def design_curves(
        self, w_min: float = 1.0, w_max: float = 1000.0, num: int = 101
    ) -> list[DesignCurve]:
        """The two curves of the section 6.2 figure ((W, P) plane)."""
        return [
            sample_curve("pins", self.pin_limit, w_min, w_max, num),
            sample_curve("area", self.area_limit, w_min, w_max, num),
        ]

    # -- optimum ---------------------------------------------------------------------

    def corner(self) -> DesignPoint:
        """The corner P ≈ 13.5, W ≈ 43 (for the paper's constants).

        Solves (2W + 9)B + Γ = 1/P_pin for W in closed form.
        """
        t = self.technology
        p_pin = self.pin_limit()
        w = ((1.0 / p_pin) - t.Gamma - 9.0 * t.B) / (2.0 * t.B)
        if w <= 0:
            # Area binds before pins at any width; corner degenerates.
            return DesignPoint(x=1.0, p=min(p_pin, self.area_limit(1.0)))
        return DesignPoint(x=w, p=p_pin)

    def optimal_integer_split(self) -> tuple[int, int]:
        """Integer (P_w, P_k) maximizing P_w·P_k under pins *and* area.

        The area cap matters when the package is generous relative to
        the die: at W = 1 (the narrowest slice) a chip can hold at most
        ``1 / (11B + Γ)`` PEs, so pin-feasible splits beyond that are
        rejected.  Tie-break: the smaller P_w (fewer, wider memory
        streams — lower main-memory bandwidth per chip), which selects
        the paper's P_w = 2, P_k = 6 over the equal-product 3 × 4.
        """
        t = self.technology
        max_p_by_area = int(1.0 / (11.0 * t.B + t.Gamma))
        best: tuple[int, int] | None = None
        best_product = 0
        max_pw = t.Pi // (2 * t.D)
        for pw in range(1, max_pw + 1):
            pk_pins = (t.Pi - 2 * t.D * pw) // (2 * t.E)
            if pk_pins < 1:
                continue
            pk = min(pk_pins, max(max_p_by_area // pw, 0))
            if pk < 1:
                continue
            product = pw * pk
            if product > best_product or (
                product == best_product and best is not None and pw < best[0]
            ):
                best = (pw, pk)
                best_product = product
        if best is None:
            raise ValueError("technology admits no feasible SPA design")
        return best

    def max_slice_width(self, pes_wide: int, pes_deep: int) -> int:
        """Largest integer W the area allows for an integer (P_w, P_k)."""
        pes_wide = check_positive(pes_wide, "pes_wide", integer=True)
        pes_deep = check_positive(pes_deep, "pes_deep", integer=True)
        t = self.technology
        p = pes_wide * pes_deep
        w = ((1.0 / p) - t.Gamma - 9.0 * t.B) / (2.0 * t.B)
        if w < 1:
            raise ValueError(
                f"no slice fits with P_w={pes_wide}, P_k={pes_deep} in this technology"
            )
        return int(math.floor(w + 1e-9))

    def corner_slice_width(self) -> int:
        """W at the continuous corner, rounded to the nearest integer (43)."""
        return int(round(self.corner().x))

    def optimal_design(
        self,
        lattice_size: int,
        pipeline_depth: int | None = None,
        slice_width_policy: str = "corner",
    ) -> SPADesign:
        """The best feasible integer design for a lattice of size L.

        ``slice_width_policy`` selects W:

        * ``"corner"`` (default) — the continuous corner's W (43 for the
          paper's constants).  This is the operating point the paper's
          section 6.3 numbers (128¾ B per PE, etc.) are quoted at.
        * ``"max"`` — the widest W the area constraint allows for the
          *integer* P (50 for the paper's constants), which minimizes
          main-memory bandwidth at the same throughput.
        """
        lattice_size = check_positive(lattice_size, "lattice_size", integer=True)
        pw, pk = self.optimal_integer_split()
        if slice_width_policy == "corner":
            w = min(self.corner_slice_width(), self.max_slice_width(pw, pk))
        elif slice_width_policy == "max":
            w = self.max_slice_width(pw, pk)
        else:
            raise ValueError(
                f"slice_width_policy={slice_width_policy!r} must be 'corner' or 'max'"
            )
        return SPADesign(
            technology=self.technology,
            slice_width=min(w, lattice_size),
            pes_wide=pw,
            pes_deep=pk,
            lattice_size=lattice_size,
            pipeline_depth=pipeline_depth if pipeline_depth is not None else pk,
        )
