"""WSA-E: the extensible wide-serial variant — paper section 6.3.

"The extension can be accomplished by moving a portion of the shift
register off chip.  The pin constraints given previously, with the same
constants, allow only one processor per chip in this case.  A stage in
the pipeline consists of a processor chip and associated shift registers
sufficient to hold the remainder of the 2L + 10 node values which do not
fit onto the processor chip."

Pin accounting behind the "only one processor" statement: a lane now
needs its 2D stream pins *plus* two off-chip delay-line break-outs (the
two long runs between the three window rows), each D out + D in, i.e.
6D pins per lane = 48 of the 72 available — one lane fits, two do not.

The off-chip storage is "another technology ... such as off-chip
commercial memories"; its density relative to on-chip shift register is
the ``commercial_density`` parameter (κ).  The paper's "about twice as
much area as SPA" at L = 1000 corresponds to κ ≈ 8 — the bench sweeps κ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.technology import ChipTechnology, PAPER_TECHNOLOGY
from repro.util.validation import check_positive

__all__ = ["WSAEDesign", "WSAEModel"]

#: sites of delay a WSA-E stage must hold (window of 10 + two lattice lines)
def _stage_delay_sites(lattice_size: int) -> int:
    return 2 * lattice_size + 10


@dataclass(frozen=True)
class WSAEDesign:
    """A WSA-E machine: k single-PE stages with off-chip delay lines.

    Parameters
    ----------
    technology:
        Chip constants.
    lattice_size:
        L — lattice edge (now *not* bounded by chip area; that is the
        whole point of the variant).
    pipeline_depth:
        k — number of stages = processor chips.
    commercial_density:
        κ — density advantage of off-chip commercial memory over on-chip
        shift register (area of one off-chip site = B/κ).
    """

    technology: ChipTechnology
    lattice_size: int
    pipeline_depth: int = 1
    commercial_density: float = 8.0

    def __post_init__(self) -> None:
        check_positive(self.lattice_size, "lattice_size", integer=True)
        check_positive(self.pipeline_depth, "pipeline_depth", integer=True)
        check_positive(self.commercial_density, "commercial_density")

    @property
    def pes_per_chip(self) -> int:
        """Exactly one (pin-limited; see module docstring)."""
        return 1

    @property
    def pins_used(self) -> int:
        """2D stream + 2 off-chip delay break-outs at 2D each = 6D."""
        return 6 * self.technology.D

    def is_feasible(self) -> bool:
        """Whether the pin constraint (the only chip constraint) is met."""
        return self.pins_used <= self.technology.Pi

    # -- storage and area ---------------------------------------------------------

    @property
    def delay_sites_per_stage(self) -> int:
        """2L + 10 site values per pipeline stage."""
        return _stage_delay_sites(self.lattice_size)

    @property
    def storage_area_per_pe(self) -> float:
        """Normalized storage area per processor: (2L + 10) B.

        This is the paper's headline per-processor figure; it grows
        linearly with L whereas SPA's (2W + 9)B + Γ is constant.
        """
        return self.delay_sites_per_stage * self.technology.B

    @property
    def storage_area_per_pe_commercial(self) -> float:
        """Per-processor storage area when the delay lives in κ-denser
        off-chip commercial memory: (2L + 10) B / κ."""
        return self.storage_area_per_pe / self.commercial_density

    # -- system-level -----------------------------------------------------------------

    @property
    def num_chips(self) -> int:
        """Processor chips only (memory chips are accounted as area)."""
        return self.pipeline_depth

    @property
    def update_rate(self) -> float:
        """R = F · k (one update per stage per tick)."""
        return self.technology.F * self.pipeline_depth

    @property
    def main_memory_bandwidth_bits_per_tick(self) -> int:
        """Constant 2D = 16 bits per tick, independent of L and k."""
        return 2 * self.technology.D

    @property
    def main_memory_bandwidth_bytes_per_second(self) -> float:
        """Main-memory traffic at the configured clock, in bytes/s."""
        return self.main_memory_bandwidth_bits_per_tick * self.technology.F / 8.0


class WSAEModel:
    """System-level analysis of WSA-E for a given technology."""

    def __init__(self, technology: ChipTechnology = PAPER_TECHNOLOGY):
        self.technology = technology

    def design(
        self,
        lattice_size: int,
        pipeline_depth: int = 1,
        commercial_density: float = 8.0,
    ) -> WSAEDesign:
        """A feasible WSA-E machine for a lattice of size L.

        Raises
        ------
        ValueError
            if the 6D pin load exceeds the package's Π.
        """
        design = WSAEDesign(
            technology=self.technology,
            lattice_size=lattice_size,
            pipeline_depth=pipeline_depth,
            commercial_density=commercial_density,
        )
        if not design.is_feasible():
            raise ValueError(
                f"WSA-E needs {design.pins_used} pins but Π={self.technology.Pi}"
            )
        return design

    def chips_for_target_rate(self, lattice_size: int, target_rate: float) -> int:
        """Stages needed to reach a target update rate (linear in rate)."""
        check_positive(target_rate, "target_rate")
        import math

        return max(1, math.ceil(target_rate / self.technology.F))
