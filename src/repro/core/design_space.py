"""Shared design-space machinery: curves, corners, integer design points.

Both architecture models reduce to the same picture the paper draws: two
constraint curves in a two-dimensional plane (pin constraint and area
constraint), a feasible region below both, and an optimal operating point
at the corner where the curves cross ("the corner is the logical choice
of operating point").  This module provides the generic pieces —
sampling constraint curves over a parameter range, intersecting them,
and rounding the continuous corner to the best feasible integer design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy.optimize import brentq

from repro.util.validation import check_positive

__all__ = [
    "DesignPoint",
    "DesignCurve",
    "feasibility_corner",
    "sample_curve",
    "registry_design_curves",
]


@dataclass(frozen=True)
class DesignPoint:
    """A point of a design plane: abscissa (L or W) and PE count P."""

    x: float
    p: float

    def __post_init__(self) -> None:
        if self.x < 0 or self.p < 0:
            raise ValueError(f"design point ({self.x}, {self.p}) must be non-negative")


@dataclass(frozen=True)
class DesignCurve:
    """A named constraint curve ``P = f(x)`` sampled over a range.

    ``name`` identifies the constraint ("pins", "area"); ``xs``/``ps``
    are the sampled series a bench prints (the paper's figures plot
    exactly these).
    """

    name: str
    xs: np.ndarray
    ps: np.ndarray

    def __post_init__(self) -> None:
        xs = np.asarray(self.xs, dtype=np.float64)
        ps = np.asarray(self.ps, dtype=np.float64)
        if xs.shape != ps.shape or xs.ndim != 1:
            raise ValueError("xs and ps must be 1-D arrays of equal length")
        if xs.size < 2:
            raise ValueError("a curve needs at least two samples")
        if np.any(np.diff(xs) <= 0):
            raise ValueError("xs must be strictly increasing")
        object.__setattr__(self, "xs", xs)
        object.__setattr__(self, "ps", ps)

    def at(self, x: float) -> float:
        """Linear interpolation of the curve at ``x``."""
        if not (self.xs[0] <= x <= self.xs[-1]):
            raise ValueError(
                f"x={x} outside sampled range [{self.xs[0]}, {self.xs[-1]}]"
            )
        return float(np.interp(x, self.xs, self.ps))

    def rows(self) -> list[tuple[float, float]]:
        """(x, P) pairs — what the bench prints as the figure's series."""
        return list(zip(self.xs.tolist(), self.ps.tolist()))


def sample_curve(
    name: str,
    fn: Callable[[float], float],
    x_min: float,
    x_max: float,
    num: int = 101,
) -> DesignCurve:
    """Sample ``P = fn(x)`` at ``num`` evenly spaced points.

    Negative values (constraint infeasible at any P) are clamped to 0,
    matching how the paper's figures draw the curves hitting the axis.
    """
    check_positive(num - 1, "num - 1", integer=True)
    if not x_max > x_min:
        raise ValueError(f"x_max={x_max} must exceed x_min={x_min}")
    xs = np.linspace(x_min, x_max, num)
    ps = np.array([max(0.0, float(fn(float(x)))) for x in xs])
    return DesignCurve(name=name, xs=xs, ps=ps)


def feasibility_corner(
    pin_limit: Callable[[float], float],
    area_limit: Callable[[float], float],
    x_min: float,
    x_max: float,
) -> DesignPoint:
    """The corner of the feasible region: where the binding constraint flips.

    ``pin_limit`` is typically constant in x and ``area_limit`` strictly
    decreasing; the corner is the largest x at which the area constraint
    still allows the pin-limited P.  If the curves never cross in range,
    the corner degenerates to an endpoint (whichever constraint binds).
    """
    if not x_max > x_min:
        raise ValueError(f"x_max={x_max} must exceed x_min={x_min}")

    def gap(x: float) -> float:
        return area_limit(x) - pin_limit(x)

    g_lo, g_hi = gap(x_min), gap(x_max)
    if g_lo <= 0:
        # Area already binding at x_min: corner at the left endpoint.
        x_star = x_min
    elif g_hi >= 0:
        # Pins binding everywhere: corner at the right endpoint.
        x_star = x_max
    else:
        x_star = float(brentq(gap, x_min, x_max, xtol=1e-9))
    p_star = min(pin_limit(x_star), area_limit(x_star))
    return DesignPoint(x=x_star, p=max(0.0, p_star))


def best_integer_p(p_continuous: float) -> int:
    """Round a continuous PE count down to a feasible integer (min 0)."""
    if p_continuous < 0:
        raise ValueError(f"p_continuous={p_continuous} must be non-negative")
    return int(np.floor(p_continuous + 1e-9))


def registry_design_curves(
    technology: object | None = None,
) -> dict[str, list[DesignCurve]]:
    """Design-plane constraint curves for every registered machine.

    Enumerates the machine registry (``repro.machines``) and samples
    each spec's design plane — the section 6.1 (L, P) figure for the
    WSA, the section 6.2 (W, P) figure for the SPA.  Machines without a
    free design plane (serial, WSA-E) are omitted.  One registry-driven
    sweep replaces per-model ``design_curves`` calls at every plotting
    and benchmarking site.
    """
    from repro import machines  # deferred: machines.catalog imports this module
    from repro.core.technology import PAPER_TECHNOLOGY, ChipTechnology

    tech = technology if technology is not None else PAPER_TECHNOLOGY
    if not isinstance(tech, ChipTechnology):
        raise TypeError(f"technology must be a ChipTechnology, got {type(tech)!r}")
    return {
        spec.name: spec.design_curves(tech)
        for spec in machines.specs()
        if spec.design_curves is not None
    }
