"""VLSI chip technology parameters.

Section 6 of the paper parameterizes both architectures by the same
small set of chip constants, "figures derived from our actual layouts"
of the 3µ CMOS prototype:

======  ========================================================  =============
symbol  meaning                                                   paper value
======  ========================================================  =============
D       bits of state per lattice site                            8
E       bits crossing a slice boundary to complete a              3
        neighborhood (SPA only)
Π       usable I/O pins per chip                                  72
α       usable chip area (λ²)                                     (normalizing)
β       area of one site's worth of shift register (λ²)           B = β/α = 576e-6
γ       area of one processing element (λ²)                       Γ = γ/α = 19.4e-3
F       major clock frequency                                     10 MHz
======  ========================================================  =============

The paper works with the *normalized* areas B = β/α and Γ = γ/α, so
:class:`ChipTechnology` stores those directly (α is only needed to get
back to λ² and defaults to 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import check_positive

__all__ = ["ChipTechnology", "PAPER_TECHNOLOGY"]


@dataclass(frozen=True)
class ChipTechnology:
    """The chip-level design constraints both architectures share.

    Parameters
    ----------
    bits_per_site:
        D — width of a site's state in bits.
    pins:
        Π — total usable I/O pins.
    site_area:
        B = β/α — normalized area of storage for one site value.
    pe_area:
        Γ = γ/α — normalized area of one processing element.
    boundary_bits:
        E — bits exchanged across a slice boundary per site update to
        complete a split neighborhood (3 for the FHP stencil).
    clock_hz:
        F — major cycle rate; each PE retires one site update per cycle.
    chip_area:
        α in λ²; only used to convert normalized areas back to λ².
    """

    bits_per_site: int = 8
    pins: int = 72
    site_area: float = 576e-6
    pe_area: float = 19.4e-3
    boundary_bits: int = 3
    clock_hz: float = 10e6
    chip_area: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.bits_per_site, "bits_per_site", integer=True)
        check_positive(self.pins, "pins", integer=True)
        check_positive(self.site_area, "site_area")
        check_positive(self.pe_area, "pe_area")
        check_positive(self.boundary_bits, "boundary_bits", integer=True)
        check_positive(self.clock_hz, "clock_hz")
        check_positive(self.chip_area, "chip_area")
        if self.site_area >= 1.0:
            raise ValueError(
                f"site_area={self.site_area} is normalized to chip area and must be < 1"
            )
        if self.pe_area >= 1.0:
            raise ValueError(
                f"pe_area={self.pe_area} is normalized to chip area and must be < 1"
            )

    # Symbol-named aliases so model code reads like the paper's algebra.

    @property
    def D(self) -> int:  # noqa: N802 - paper symbol
        """D — bits of state per lattice site."""
        return self.bits_per_site

    @property
    def E(self) -> int:  # noqa: N802 - paper symbol
        """E — bits exchanged across a slice boundary per update."""
        return self.boundary_bits

    @property
    def Pi(self) -> int:  # noqa: N802 - paper symbol Π
        """Π — usable I/O pins per chip."""
        return self.pins

    @property
    def B(self) -> float:  # noqa: N802 - paper symbol
        """B — normalized chip area of one site value of storage."""
        return self.site_area

    @property
    def Gamma(self) -> float:  # noqa: N802 - paper symbol Γ
        """Γ — normalized chip area of one processing element."""
        return self.pe_area

    @property
    def F(self) -> float:  # noqa: N802 - paper symbol
        """F — clock rate in Hz (ticks per second)."""
        return self.clock_hz

    def with_(self, **changes) -> "ChipTechnology":
        """A modified copy (ablation sweeps scale pins, areas, etc.)."""
        return replace(self, **changes)

    def site_area_lambda2(self) -> float:
        """β in λ² (absolute units)."""
        return self.site_area * self.chip_area

    def pe_area_lambda2(self) -> float:
        """γ in λ² (absolute units)."""
        return self.pe_area * self.chip_area

    def pe_equivalent_sites(self) -> float:
        """How many site-storage cells one PE costs (Γ/B ≈ 33.7 for the paper).

        Useful intuition: in the paper's technology a processing element
        is worth ~34 shift-register cells, which is why "most of the
        silicon area ... is shift register".
        """
        return self.pe_area / self.site_area


#: The paper's published 3µ CMOS constants (section 6.1 example).
PAPER_TECHNOLOGY = ChipTechnology()
