"""Architecture-facing form of the pebbling I/O bounds (section 7).

The rigorous graph-theoretic machinery (pebble games, partitions,
line-time) lives in :mod:`repro.pebbling`; this module exposes the
*headline inequality* in the units an architect uses:

    R = O(B · S^{1/d})

with R the site-update rate, B the main-memory bandwidth in site values
per unit time, S the processor storage in site values, and d the lattice
dimension.  The constant carried through the paper's proof chain is
explicit here:

    τ(2S) < 2 (d! · 2S)^{1/d}                     (Theorem 4)
    g     ≥ |X| / (2S · τ(2S))                     (Lemma 2)
    Q     ≥ S (g − 1)                              (Lemma 1)
    R     ≤ B |X| / Q  →  R ≤ 2 B τ(2S)            (asymptotically)

so the usable ceiling is ``R <= 4 B (d! 2S)^{1/d}`` up to the vanishing
S/|X| correction, which :func:`update_rate_upper_bound` includes exactly
when the problem size is given.
"""

from __future__ import annotations

import math

from repro.util.validation import check_positive

__all__ = [
    "line_time_upper_bound",
    "update_rate_upper_bound",
    "io_lower_bound",
    "storage_for_target_rate",
    "bandwidth_for_target_rate",
]


def line_time_upper_bound(storage: float, dimension: int) -> float:
    """Theorem 4's bound: τ(2S) < 2 (d! · 2S)^{1/d}."""
    check_positive(storage, "storage")
    dimension = check_positive(dimension, "dimension", integer=True)
    return 2.0 * (math.factorial(dimension) * 2.0 * storage) ** (1.0 / dimension)


def io_lower_bound(
    num_vertices: float, storage: float, dimension: int
) -> float:
    """Minimum I/O moves Q for a complete computation of |X| vertices.

    Q ≥ S(g − 1) with g ≥ |X| / (2S · τ(2S)); clamped at 0 when the whole
    problem fits in processor storage (the paper's assumption 3 excludes
    that regime explicitly).
    """
    check_positive(num_vertices, "num_vertices")
    check_positive(storage, "storage")
    tau = line_time_upper_bound(storage, dimension)
    g = num_vertices / (2.0 * storage * tau)
    return max(0.0, storage * (g - 1.0))


def update_rate_upper_bound(
    bandwidth_sites_per_second: float,
    storage: float,
    dimension: int,
    num_vertices: float | None = None,
) -> float:
    """The headline ceiling R = O(B · S^{1/d}), with explicit constants.

    Parameters
    ----------
    bandwidth_sites_per_second:
        B — main-memory bandwidth in site values per second.
    storage:
        S — processor storage in site values.
    dimension:
        d — lattice dimension.
    num_vertices:
        |X| — total site updates of the computation.  When given, the
        exact finite-size bound ``B |X| / Q`` is returned; when omitted,
        the asymptotic ``2 B τ(2S) < 4 B (d! 2S)^{1/d}``.
    """
    check_positive(bandwidth_sites_per_second, "bandwidth_sites_per_second")
    check_positive(storage, "storage")
    tau = line_time_upper_bound(storage, dimension)
    if num_vertices is None:
        return 2.0 * bandwidth_sites_per_second * tau
    q = io_lower_bound(num_vertices, storage, dimension)
    if q <= 0:
        return math.inf  # problem fits in storage; no I/O limit applies
    return bandwidth_sites_per_second * num_vertices / q


def storage_for_target_rate(
    target_rate: float, bandwidth_sites_per_second: float, dimension: int
) -> float:
    """Minimum storage S for R = target under the asymptotic bound.

    Inverts R ≤ 4 B (d! 2S)^{1/d}: S ≥ (R / 4B)^d / (2 · d!).  The d-th
    power is the paper's punchline — pushing rate via storage alone is
    exponentially expensive in dimension.
    """
    check_positive(target_rate, "target_rate")
    check_positive(bandwidth_sites_per_second, "bandwidth_sites_per_second")
    dimension = check_positive(dimension, "dimension", integer=True)
    ratio = target_rate / (4.0 * bandwidth_sites_per_second)
    return (ratio**dimension) / (2.0 * math.factorial(dimension))


def bandwidth_for_target_rate(
    target_rate: float, storage: float, dimension: int
) -> float:
    """Minimum bandwidth B for R = target: B ≥ R / (4 (d! 2S)^{1/d})."""
    check_positive(target_rate, "target_rate")
    check_positive(storage, "storage")
    dimension = check_positive(dimension, "dimension", integer=True)
    return target_rate / (
        4.0 * (math.factorial(dimension) * 2.0 * storage) ** (1.0 / dimension)
    )
