"""The section 8 prototype throughput model.

"A prototype lattice-gas engine, using the WSA architecture, and based on
a custom 3µ CMOS chip, is now being constructed.  Each chip provides 20
million site-updates per second running at 10 MHz.  It is unlikely,
however, that the workstation host will be able to supply the 40
megabyte per second bandwidth required for this level of performance.
We expect to realize approximately 1 million site-updates/sec/chip from
the prototype implementation."

The arithmetic is a pure bandwidth cap: every site update moves one
D-bit value in and one out (2D/8 bytes), so a chip that retires U
updates/s demands ``U · 2D/8`` bytes/s of host bandwidth, and a host
that sustains H bytes/s caps the realized rate at ``H / (2D/8)``.
:class:`PrototypeThroughputModel` carries that computation plus the host
sweep benchmark E7 prints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.technology import ChipTechnology, PAPER_TECHNOLOGY
from repro.util.validation import check_positive

__all__ = ["PrototypeThroughputModel", "realized_update_rate"]


def realized_update_rate(
    peak_updates_per_second: float,
    host_bandwidth_bytes_per_second: float,
    bits_per_site: int = 8,
) -> float:
    """Achieved site-update rate under a host-bandwidth cap.

    ``min(peak, host_bandwidth / (2D/8))`` — the sustained stream needs
    D bits read and D bits written per update.
    """
    check_positive(peak_updates_per_second, "peak_updates_per_second")
    check_positive(host_bandwidth_bytes_per_second, "host_bandwidth_bytes_per_second")
    check_positive(bits_per_site, "bits_per_site", integer=True)
    bytes_per_update = 2.0 * bits_per_site / 8.0
    return min(
        peak_updates_per_second,
        host_bandwidth_bytes_per_second / bytes_per_update,
    )


@dataclass(frozen=True)
class PrototypeThroughputModel:
    """The paper's prototype chip: peak rate, bandwidth demand, derating.

    Parameters
    ----------
    technology:
        Chip constants (F and D).
    updates_per_tick:
        Site updates the chip retires per clock (the prototype's 2 —
        20 M updates/s at 10 MHz).
    """

    technology: ChipTechnology = PAPER_TECHNOLOGY
    updates_per_tick: int = 2

    def __post_init__(self) -> None:
        check_positive(self.updates_per_tick, "updates_per_tick", integer=True)

    @property
    def peak_updates_per_second(self) -> float:
        """F · updates_per_tick (20 M/s for the prototype)."""
        return self.technology.F * self.updates_per_tick

    @property
    def bytes_per_update(self) -> float:
        """2D / 8 bytes of stream traffic per site update."""
        return 2.0 * self.technology.D / 8.0

    @property
    def required_bandwidth_bytes_per_second(self) -> float:
        """Host bandwidth that sustains the peak (40 MB/s for the prototype)."""
        return self.peak_updates_per_second * self.bytes_per_update

    def realized_rate(self, host_bandwidth_bytes_per_second: float) -> float:
        """Achieved updates/s for a given sustained host bandwidth."""
        return realized_update_rate(
            self.peak_updates_per_second,
            host_bandwidth_bytes_per_second,
            self.technology.D,
        )

    def utilization(self, host_bandwidth_bytes_per_second: float) -> float:
        """Fraction of peak achieved (0, 1]."""
        return self.realized_rate(host_bandwidth_bytes_per_second) / (
            self.peak_updates_per_second
        )

    def host_bandwidth_for_rate(self, target_updates_per_second: float) -> float:
        """Host bandwidth needed to sustain a target rate."""
        check_positive(target_updates_per_second, "target_updates_per_second")
        if target_updates_per_second > self.peak_updates_per_second:
            raise ValueError(
                f"target {target_updates_per_second:.3g}/s exceeds chip peak "
                f"{self.peak_updates_per_second:.3g}/s"
            )
        return target_updates_per_second * self.bytes_per_update

    def bandwidth_sweep(
        self, host_bandwidths: np.ndarray
    ) -> list[tuple[float, float, float]]:
        """(host B/s, realized updates/s, utilization) rows for bench E7."""
        rows = []
        for hb in np.asarray(host_bandwidths, dtype=np.float64):
            rate = self.realized_rate(float(hb))
            rows.append((float(hb), rate, rate / self.peak_updates_per_second))
        return rows
