"""Head-to-head architecture comparison — paper section 6.3.

Two viewpoints, exactly as the paper structures them:

* :func:`compare_optimal_designs` — WSA vs SPA, each at its
  throughput-optimal operating point (E5): PEs per chip (throughput per
  chip ratio), main-memory bandwidth, data-access pattern.
* :func:`compare_extensible` — WSA-E vs SPA at a large lattice (E6):
  per-processor bandwidth and storage area, speed per chip, and the
  L = 1000 area/bandwidth ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spa import SPADesign, SPAModel
from repro.core.technology import ChipTechnology, PAPER_TECHNOLOGY
from repro.core.wsa import WSADesign, WSAModel
from repro.core.wsa_e import WSAEDesign, WSAEModel
from repro.util.validation import check_positive

__all__ = [
    "ArchitectureSummary",
    "compare_optimal_designs",
    "compare_extensible",
    "summarize_architectures",
]


@dataclass(frozen=True)
class ArchitectureSummary:
    """One row of a comparison table."""

    name: str
    pes_per_chip: float
    throughput_per_chip: float
    bandwidth_bits_per_tick: float
    storage_area_per_pe: float
    lattice_size: int
    access_pattern: str
    extensible: bool
    notes: str = ""


@dataclass(frozen=True)
class OptimalComparison:
    """The first section 6.3 comparison (optimized for throughput)."""

    wsa: WSADesign
    spa: SPADesign
    wsa_summary: ArchitectureSummary
    spa_summary: ArchitectureSummary

    @property
    def speedup_spa_over_wsa(self) -> float:
        """PEs/chip ratio — the paper's "SPA is three times faster"."""
        return self.spa.pes_per_chip / self.wsa.pes_per_chip

    @property
    def bandwidth_ratio_spa_over_wsa(self) -> float:
        """Main-memory bandwidth ratio — the paper's "four times as much"."""
        return (
            self.spa.main_memory_bandwidth_bits_per_tick
            / self.wsa.main_memory_bandwidth_bits_per_tick
        )


def compare_optimal_designs(
    technology: ChipTechnology = PAPER_TECHNOLOGY,
) -> OptimalComparison:
    """WSA vs SPA at their optimal operating points (experiment E5).

    For the paper's constants: WSA has P = 4 at L = 785 needing 64
    bits/tick; SPA has P_w·P_k = 12 at W = 43, so it is 3× faster per
    chip but needs 2D·L/W ≈ 292 bits/tick (the paper quotes 262 — see
    EXPERIMENTS.md for the rounding discussion), roughly 4× the WSA's.
    """
    wsa_model = WSAModel(technology)
    wsa = wsa_model.optimal_design()
    spa_model = SPAModel(technology)
    spa = spa_model.optimal_design(lattice_size=wsa.lattice_size)
    wsa_summary = ArchitectureSummary(
        name="WSA",
        pes_per_chip=wsa.pes_per_chip,
        throughput_per_chip=wsa.updates_per_chip_per_second,
        bandwidth_bits_per_tick=wsa.main_memory_bandwidth_bits_per_tick,
        storage_area_per_pe=(wsa.storage_sites_per_chip * technology.B) / wsa.pes_per_chip
        + technology.Gamma,
        lattice_size=wsa.lattice_size,
        access_pattern="strict raster scan",
        extensible=False,
        notes="lattice size fixed by chip technology",
    )
    spa_summary = ArchitectureSummary(
        name="SPA",
        pes_per_chip=spa.pes_per_chip,
        throughput_per_chip=spa.throughput_per_chip,
        bandwidth_bits_per_tick=spa.main_memory_bandwidth_bits_per_tick,
        storage_area_per_pe=spa.storage_area_per_pe,
        lattice_size=spa.lattice_size,
        access_pattern="row-staggered",
        extensible=True,
        notes="requires side-to-side synchronous channels",
    )
    return OptimalComparison(
        wsa=wsa, spa=spa, wsa_summary=wsa_summary, spa_summary=spa_summary
    )


@dataclass(frozen=True)
class ExtensibleComparison:
    """The second section 6.3 comparison (WSA-E vs SPA)."""

    wsa_e: WSAEDesign
    spa: SPADesign

    @property
    def speedup_spa_over_wsa_e(self) -> float:
        """PEs-per-chip ratio: 12× for the paper's constants."""
        return self.spa.pes_per_chip / self.wsa_e.pes_per_chip

    @property
    def bandwidth_ratio_wsa_e_over_spa(self) -> float:
        """WSA-E / SPA bandwidth: "about one twentieth" at L = 1000."""
        return (
            self.wsa_e.main_memory_bandwidth_bits_per_tick
            / self.spa.main_memory_bandwidth_bits_per_tick
        )

    @property
    def storage_area_ratio_wsa_e_over_spa(self) -> float:
        """On-chip-equivalent storage per PE: (2L+10)B vs (2W+9)B + Γ."""
        return self.wsa_e.storage_area_per_pe / self.spa.storage_area_per_pe

    @property
    def commercial_area_ratio_wsa_e_over_spa(self) -> float:
        """Storage per PE with off-chip delay at commercial density κ.

        ≈ 2 at L = 1000 with κ = 8 — the paper's "about twice as much
        area as SPA, while requiring about one twentieth as much
        bandwidth".
        """
        return (
            self.wsa_e.storage_area_per_pe_commercial / self.spa.storage_area_per_pe
        )


def compare_extensible(
    lattice_size: int = 1000,
    technology: ChipTechnology = PAPER_TECHNOLOGY,
    commercial_density: float = 8.0,
) -> ExtensibleComparison:
    """WSA-E vs SPA at a large lattice (experiment E6)."""
    lattice_size = check_positive(lattice_size, "lattice_size", integer=True)
    wsa_e = WSAEModel(technology).design(
        lattice_size=lattice_size, commercial_density=commercial_density
    )
    spa = SPAModel(technology).optimal_design(lattice_size=lattice_size)
    return ExtensibleComparison(wsa_e=wsa_e, spa=spa)


def summarize_architectures(
    lattice_size: int | None = None,
    technology: ChipTechnology = PAPER_TECHNOLOGY,
) -> list[ArchitectureSummary]:
    """Comparison-table rows for every registered machine with one.

    Enumerates the machine registry (``repro.machines``) and collects
    each spec's summary row; machines without a section 6.3 row — the
    plain serial pipeline is the P = 1 WSA — contribute nothing, so for
    the built-in catalog this returns the paper's [WSA, SPA, WSA-E].
    """
    from repro import machines  # deferred: machines.catalog imports this module

    size = (
        lattice_size
        if lattice_size is not None
        else compare_optimal_designs(technology).wsa.lattice_size
    )
    return [
        spec.summary(technology, size)
        for spec in machines.specs()
        if spec.summary is not None
    ]
