"""The wide-serial architecture (WSA) design model — paper sections 4, 6.1.

One chip holds one pipeline stage: a shift-register delay line spanning
two lattice rows plus a window, and ``P`` processing elements that each
retire one site update per clock.  ``k`` chips in series advance the
lattice ``k`` generations per pass.

System parameters (paper, section 6.1)::

    N = k                     chips                 (system area)
    R = F * P * k             site updates / second (system throughput)

Chip constraints::

    2 D P                 <= Π   (pins: P sites in + P sites out per tick)
    (2L + 7P + 3) B + Γ P <= 1   (area: delay line + window + PEs)

The area form is the one the paper's closed-form curve
``P <= (1 - 3B - 2BL) / (7B + Γ)`` is algebraically equivalent to, and it
reproduces the published operating point P≈4, L≈785 exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.design_space import (
    DesignCurve,
    DesignPoint,
    best_integer_p,
    feasibility_corner,
    sample_curve,
)
from repro.core.technology import ChipTechnology, PAPER_TECHNOLOGY
from repro.util.validation import check_positive

__all__ = ["WSADesign", "WSAModel"]


@dataclass(frozen=True)
class WSADesign:
    """A concrete WSA machine: technology + (L, P, k).

    Attributes
    ----------
    technology:
        Chip constants.
    lattice_size:
        L — sites along an edge of the square lattice.
    pes_per_chip:
        P — processing elements (lanes) per chip.
    pipeline_depth:
        k — chips in series = generations advanced per pass.
    """

    technology: ChipTechnology
    lattice_size: int
    pes_per_chip: int
    pipeline_depth: int = 1

    def __post_init__(self) -> None:
        check_positive(self.lattice_size, "lattice_size", integer=True)
        check_positive(self.pes_per_chip, "pes_per_chip", integer=True)
        check_positive(self.pipeline_depth, "pipeline_depth", integer=True)

    # -- chip-level accounting ------------------------------------------------

    @property
    def storage_sites_per_chip(self) -> int:
        """Shift-register cells on one chip: 2L + 7P + 3."""
        return 2 * self.lattice_size + 7 * self.pes_per_chip + 3

    @property
    def chip_area_used(self) -> float:
        """Normalized area: storage + PEs (must be <= 1)."""
        t = self.technology
        return self.storage_sites_per_chip * t.B + self.pes_per_chip * t.Gamma

    @property
    def pins_used(self) -> int:
        """2 D P — one site in and one site out per lane per tick."""
        return 2 * self.technology.D * self.pes_per_chip

    def is_feasible(self) -> bool:
        """Whether the chip meets both pin and area constraints."""
        return (
            self.pins_used <= self.technology.Pi and self.chip_area_used <= 1.0 + 1e-12
        )

    def infeasibility_reasons(self) -> list[str]:
        """Which constraints the design violates (empty when feasible)."""
        reasons = []
        if self.pins_used > self.technology.Pi:
            reasons.append(
                f"pins: {self.pins_used} > Π={self.technology.Pi}"
            )
        if self.chip_area_used > 1.0 + 1e-12:
            reasons.append(f"area: {self.chip_area_used:.4f} > 1")
        return reasons

    # -- system-level accounting ----------------------------------------------

    @property
    def num_chips(self) -> int:
        """N = k (one stage per chip)."""
        return self.pipeline_depth

    @property
    def update_rate(self) -> float:
        """R = F · P · k site updates per second."""
        return self.technology.F * self.pes_per_chip * self.pipeline_depth

    @property
    def updates_per_chip_per_second(self) -> float:
        """R / N = F · P — per-chip throughput."""
        return self.technology.F * self.pes_per_chip

    @property
    def main_memory_bandwidth_bits_per_tick(self) -> int:
        """Bits the main memory must move per clock: 2 D P.

        The pipeline is a single stream — only the first chip reads and
        the last writes, so system bandwidth equals one chip's pin load.
        """
        return 2 * self.technology.D * self.pes_per_chip

    @property
    def main_memory_bandwidth_bytes_per_second(self) -> float:
        """Main-memory traffic at the configured clock, in bytes/s."""
        return self.main_memory_bandwidth_bits_per_tick * self.technology.F / 8.0

    @property
    def throughput_per_area(self) -> float:
        """R / N — updates per second per chip."""
        return self.update_rate / self.num_chips

    def generations_per_pass(self) -> int:
        """Each pass over the lattice advances k generations."""
        return self.pipeline_depth


class WSAModel:
    """Design-space analysis of the WSA for a given technology.

    Reproduces the section 6.1 figure (constraint curves in the (L, P)
    plane) and the published optimum.
    """

    def __init__(self, technology: ChipTechnology = PAPER_TECHNOLOGY):
        self.technology = technology

    # -- constraint curves -----------------------------------------------------

    def pin_limit(self, lattice_size: float = 0.0) -> float:
        """Largest (continuous) P the pin constraint allows: Π / 2D."""
        t = self.technology
        return t.Pi / (2.0 * t.D)

    def area_limit(self, lattice_size: float) -> float:
        """Largest (continuous) P the area constraint allows at L.

        P <= (1 - 3B - 2BL) / (7B + Γ) — the paper's closed form.
        """
        if lattice_size < 0:
            raise ValueError(f"lattice_size={lattice_size} must be non-negative")
        t = self.technology
        return (1.0 - 3.0 * t.B - 2.0 * t.B * lattice_size) / (7.0 * t.B + t.Gamma)

    def design_curves(
        self, l_min: float = 1.0, l_max: float = 1000.0, num: int = 101
    ) -> list[DesignCurve]:
        """The two curves of the section 6.1 figure."""
        return [
            sample_curve("pins", self.pin_limit, l_min, l_max, num),
            sample_curve("area", self.area_limit, l_min, l_max, num),
        ]

    # -- optimum ----------------------------------------------------------------

    def corner(self, l_min: float = 1.0, l_max: float = 2000.0) -> DesignPoint:
        """The continuous operating point (P ≈ 4.01, L ≈ 785 for the paper).

        "we want L to be as big as possible, so the corner is the
        logical choice of operating point."
        """
        return feasibility_corner(self.pin_limit, self.area_limit, l_min, l_max)

    def optimal_design(self, pipeline_depth: int = 1) -> WSADesign:
        """The best feasible *integer* design at the corner.

        P is the pin-limited integer; L is then pushed to the largest
        integer the area constraint allows for that P.
        """
        p_int = best_integer_p(min(self.pin_limit(), self.area_limit(0.0)))
        if p_int < 1:
            raise ValueError("technology admits no feasible WSA design")
        l_int = self.max_lattice_size(p_int)
        return WSADesign(
            technology=self.technology,
            lattice_size=l_int,
            pes_per_chip=p_int,
            pipeline_depth=pipeline_depth,
        )

    def max_lattice_size(self, pes_per_chip: int) -> int:
        """Largest L the area constraint allows for a given integer P."""
        pes_per_chip = check_positive(pes_per_chip, "pes_per_chip", integer=True)
        t = self.technology
        numerator = 1.0 - (7 * pes_per_chip + 3) * t.B - pes_per_chip * t.Gamma
        l_max = numerator / (2.0 * t.B)
        if l_max < 1:
            raise ValueError(
                f"no lattice fits with P={pes_per_chip} in this technology"
            )
        return int(math.floor(l_max + 1e-9))

    def absolute_max_lattice_size(self) -> int:
        """Upper bound on L even accepting arbitrarily slow computation.

        "At a certain point all the chip area would be used for memory,
        leaving no room for PEs" — i.e. L at P = 1.
        """
        return self.max_lattice_size(1)

    # -- ultimate performance ----------------------------------------------------

    def max_pipeline_depth(self, design: WSADesign) -> int:
        """k_max = L: beyond that the pipeline holds the whole lattice."""
        return design.lattice_size

    def max_system(self) -> WSADesign:
        """The maximum-throughput system: optimal chip, k = L chips.

        N_max = L chips, R_max = (Π / 2D) · F · L updates/s.
        """
        base = self.optimal_design()
        return WSADesign(
            technology=self.technology,
            lattice_size=base.lattice_size,
            pes_per_chip=base.pes_per_chip,
            pipeline_depth=base.lattice_size,
        )

    def max_update_rate(self) -> float:
        """R_max of the section 6.1 formula (continuous P = Π/2D)."""
        t = self.technology
        corner = self.corner()
        return (t.Pi / (2.0 * t.D)) * t.F * corner.x
