"""Machine models for the paper's promised architecture comparison.

The conclusions section commits to future work the paper never
published: "We will apply these estimates to get quantitative
comparisons between competing architectures for lattice gas computations
such as the Connection Machine, the CRAY-XMP, and special purpose
machines."  This module carries out that comparison with the bound
machinery of section 7: every machine is reduced to the three
large-scale parameters the pebbling analysis says matter —

* ``B`` — main-memory bandwidth, in site values per second (a site value
  is D bits; the paper's large-scale constraint class);
* ``S`` — processor storage, in site values (red pebbles);
* ``C`` — raw compute ceiling, in site updates per second (PE count ×
  rate; the small-scale constraint).

The bound then gives the I/O ceiling ``R ≤ min(C, 4·B·(d!·2S)^{1/d})``
(asymptotic Theorem 4 form) and the *reuse requirement*: the factor
``R/B`` the machine's schedule must realize to reach its compute peak.

The 1987 machine specs below are order-of-magnitude figures assembled
from period literature and are documented per machine; the comparison's
value is the *shape* (which machines are I/O-bound, and by how much),
not the third digit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_positive

__all__ = [
    "MachineModel",
    "io_bound_update_rate",
    "PERIOD_MACHINES",
    "machine_comparison_rows",
]


def io_bound_update_rate(
    bandwidth_sites_per_second: float, storage_sites: float, dimension: int
) -> float:
    """The asymptotic section 7 ceiling: 4·B·(d!·2S)^{1/d}."""
    check_positive(bandwidth_sites_per_second, "bandwidth_sites_per_second")
    check_positive(storage_sites, "storage_sites")
    dimension = check_positive(dimension, "dimension", integer=True)
    return (
        4.0
        * bandwidth_sites_per_second
        * (math.factorial(dimension) * 2.0 * storage_sites) ** (1.0 / dimension)
    )


@dataclass(frozen=True)
class MachineModel:
    """A machine reduced to the bound's three parameters.

    Parameters
    ----------
    name:
        Display name.
    compute_rate:
        C — site updates per second the PEs could retire if fed.
    memory_bandwidth_bytes:
        Main-memory (or host/inter-chip, whichever feeds the lattice
        stream) bandwidth in bytes per second.
    storage_sites:
        S — site values the processors hold on-chip/in-register.
    bits_per_site:
        D — to convert bandwidth to site values.
    schedule_reuse:
        Site updates per site value of main-memory traffic that the
        machine's *natural schedule* realizes (the measured R/B of its
        pebbling).  Pure streaming — one read and one write per update —
        is 0.5; a k-stage pipeline realizes k/2; an in-memory machine
        like the CM only touches memory per frame I/O.
    notes:
        Where the figures come from.
    """

    name: str
    compute_rate: float
    memory_bandwidth_bytes: float
    storage_sites: float
    bits_per_site: int = 8
    schedule_reuse: float = 0.5
    notes: str = ""

    def __post_init__(self) -> None:
        check_positive(self.compute_rate, "compute_rate")
        check_positive(self.memory_bandwidth_bytes, "memory_bandwidth_bytes")
        check_positive(self.storage_sites, "storage_sites")
        check_positive(self.bits_per_site, "bits_per_site", integer=True)
        check_positive(self.schedule_reuse, "schedule_reuse")

    @property
    def bandwidth_sites_per_second(self) -> float:
        """B in site values per second (one value in *or* out)."""
        return self.memory_bandwidth_bytes * 8.0 / self.bits_per_site

    def io_ceiling(self, dimension: int) -> float:
        """R ≤ 4·B·(d!·2S)^{1/d} for this machine."""
        return io_bound_update_rate(
            self.bandwidth_sites_per_second, self.storage_sites, dimension
        )

    def streaming_rate(self) -> float:
        """Rate with no reuse at all: every update reads and writes one
        site value, so R = B/2."""
        return self.bandwidth_sites_per_second / 2.0

    def achievable_rate(self, dimension: int) -> float:
        """min(compute ceiling, I/O ceiling)."""
        return min(self.compute_rate, self.io_ceiling(dimension))

    def realized_rate(self) -> float:
        """min(compute peak, B × realized reuse) — what the machine's
        actual schedule delivers.  For the paper's prototype this is
        exactly the section 8 figure: 20 M peak capped at
        2 MB/s × 0.5 = 1 M updates/s."""
        return min(
            self.compute_rate, self.bandwidth_sites_per_second * self.schedule_reuse
        )

    def balance(self) -> float:
        """realized / peak ∈ (0, 1]: 1.0 means compute and I/O balanced."""
        return self.realized_rate() / self.compute_rate

    def is_io_bound(self, dimension: int) -> bool:
        """Whether the section 7 bound caps it below its compute peak."""
        return self.io_ceiling(dimension) < self.compute_rate

    def required_reuse(self) -> float:
        """R/B factor a schedule must realize to reach the compute peak.

        Values ≫ 1 mean the machine lives or dies by on-chip reuse —
        the paper's 'I/O pins are the critical resource' in one number.
        """
        return self.compute_rate / self.bandwidth_sites_per_second


#: Period machines, ~1987.  Sources sketched per entry; all figures are
#: order-of-magnitude reconstructions for shape comparison.
PERIOD_MACHINES: tuple[MachineModel, ...] = (
    MachineModel(
        name="WSA prototype chip",
        compute_rate=20e6,  # section 8: 20 M site-updates/s at 10 MHz
        memory_bandwidth_bytes=2e6,  # the workstation host it actually got
        storage_sites=1600,  # ~2L+3 delay line at L=785
        schedule_reuse=0.5,  # single-stage stream: read+write per update
        notes="paper section 8; host ≈ 2 MB/s sustained",
    ),
    MachineModel(
        name="WSA max system (785 chips)",
        compute_rate=3.14e10,  # R_max = (Π/2D)·F·L
        memory_bandwidth_bytes=80e6,  # 64 bits/tick at 10 MHz
        storage_sites=785 * 1600,  # k stages of delay line
        schedule_reuse=785 / 2,  # k-deep pipeline: 2/k transfers per update
        notes="paper section 6.1 maximum configuration",
    ),
    MachineModel(
        name="SPA system (19 slices, k=6)",
        compute_rate=19 * 12 * 10e6 / 2,  # ~12 PEs/chip utilized, 10 chips
        memory_bandwidth_bytes=365e6,  # 292 bits/tick at 10 MHz
        storage_sites=19 * 6 * 95,  # (2W+9) per PE
        schedule_reuse=6 / 2,  # k=6 pipeline per slice
        notes="paper section 6.2 optimal design at L=785",
    ),
    MachineModel(
        name="Connection Machine CM-1",
        compute_rate=1e9,  # 65536 1-bit PEs @4 MHz, ~200 cycles/FHP update
        memory_bandwidth_bytes=5e8,  # distributed memory, per-PE nibble/cycle class
        storage_sites=65536 * 512,  # 4 Kbit/PE = 512 bytes ≈ 512 sites
        schedule_reuse=64.0,  # lattice lives in PE memory; traffic ≈ frame I/O
        notes="Hillis 1985 specs; bit-serial FHP microcode estimate",
    ),
    MachineModel(
        name="CRAY X-MP/1",
        compute_rate=2e8,  # multi-spin-coded FHP, ~2·10^8 updates/s/CPU
        memory_bandwidth_bytes=3.15e9,  # 3 words/clock · 8 B · 105 MHz... per CPU
        storage_sites=8 * 64 * 8,  # 8 vector regs × 64 words × 8 sites/word
        schedule_reuse=0.5,  # vector streaming: read+write per update
        notes="d'Humières et al. 1986 multi-spin benchmarks; 9.5 ns clock",
    ),
    MachineModel(
        name="Sun-3 class workstation",
        compute_rate=2e5,  # scalar C, ~100 ops/site update at ~20 MIPS... ≈0.2 M/s
        memory_bandwidth_bytes=4e6,
        storage_sites=16,  # registers
        schedule_reuse=0.5,
        notes="scalar software baseline, period workstation",
    ),
)


def machine_comparison_rows(dimension: int = 2) -> list[dict]:
    """The comparison table: one dict per machine (bench E13)."""
    rows = []
    for m in PERIOD_MACHINES:
        rows.append(
            {
                "name": m.name,
                "compute_rate": m.compute_rate,
                "bandwidth_sites": m.bandwidth_sites_per_second,
                "storage_sites": m.storage_sites,
                "streaming_rate": m.streaming_rate(),
                "io_ceiling": m.io_ceiling(dimension),
                "achievable": m.achievable_rate(dimension),
                "io_bound": m.is_io_bound(dimension),
                "required_reuse": m.required_reuse(),
                "realized": m.realized_rate(),
                "balance": m.balance(),
                "notes": m.notes,
            }
        )
    return rows
