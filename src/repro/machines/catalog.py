"""The built-in machine catalog: the paper's four architectures.

Importing this module (which :mod:`repro.machines` does) registers one
:class:`~repro.machines.spec.MachineSpec` per architecture, binding

* the engine simulator (:mod:`repro.engines`),
* the closed-form design model (:mod:`repro.core.wsa` /
  :mod:`repro.core.spa` / :mod:`repro.core.wsa_e`),
* exact predicted cycle counts the simulators must reproduce, and
* the capability flags (backends, fault hooks, tickwise, side
  channels, graceful degradation).

The predicted-ticks formulas mirror the pass loop of
:class:`~repro.engines.streaming_core.StreamingEngineCore`: a run of
``G`` generations takes ``⌈G / k⌉`` passes, and every generation
contributes one stage drain, so the totals below are exact — the
registry round-trip tests assert ``stats.ticks`` equality, not a
bound.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.core.comparison import (
    ArchitectureSummary,
    compare_extensible,
    compare_optimal_designs,
)
from repro.core.design_space import DesignCurve
from repro.core.spa import SPAModel
from repro.core.technology import ChipTechnology
from repro.core.wsa import WSADesign, WSAModel
from repro.core.wsa_e import WSAEModel
from repro.engines.extensible import ExtensibleSerialEngine
from repro.engines.partitioned import PartitionedEngine
from repro.engines.pipeline import SerialPipelineEngine
from repro.engines.streaming_core import StreamingEngineCore
from repro.engines.wide_serial import WideSerialEngine
from repro.machines.registry import register
from repro.machines.spec import MachineCapabilities, MachineSpec

__all__ = ["SERIAL", "WSA", "SPA", "WSA_E"]


def _passes(generations: int, pipeline_depth: int) -> int:
    """Passes needed to retire ``generations`` through a depth-k pipeline."""
    return -(-generations // pipeline_depth)


# -- predicted cycle counts (exact, per architecture) ----------------------------


def _serial_predicted_ticks(engine: StreamingEngineCore, generations: int) -> int:
    """⌈G/k⌉ streaming passes of n sites plus one stage drain per generation."""
    if generations <= 0:
        return 0
    passes = _passes(generations, engine.pipeline_depth)
    return passes * engine.num_sites + generations * engine.stage.latency_ticks


def _wsa_predicted_ticks(engine: StreamingEngineCore, generations: int) -> int:
    """Serial timing compressed by P: ⌈n/P⌉ per pass, ⌈latency/P⌉ per drain."""
    assert isinstance(engine, WideSerialEngine)
    if generations <= 0:
        return 0
    passes = _passes(generations, engine.pipeline_depth)
    stream = math.ceil(engine.num_sites / engine.lanes)
    drain = math.ceil(engine.stage.latency_ticks / engine.lanes)
    return passes * stream + generations * drain


def _spa_predicted_ticks(engine: StreamingEngineCore, generations: int) -> int:
    """rows·W per pass round (slices stream in parallel), W+1 per drain.

    With failed slices the survivors take the dead slices' work
    round-robin: ``⌈slices / healthy⌉`` rounds per pass.
    """
    assert isinstance(engine, PartitionedEngine)
    if generations <= 0:
        return 0
    passes = _passes(generations, engine.pipeline_depth)
    widest = min(engine.slice_width, engine.model.cols)
    rounds = math.ceil(engine.num_slices / engine.num_healthy_slices)
    return passes * rounds * engine.model.rows * widest + generations * (widest + 1)


def _peak_updates_per_tick(engine: StreamingEngineCore) -> float:
    """Architectural peak: each PE retires at most one update per tick."""
    return float(engine.num_pes)


# -- closed-form design summaries ------------------------------------------------


def _serial_design(
    technology: ChipTechnology, lattice_size: int | None
) -> Mapping[str, object]:
    """The serial pipeline is the P = 1 point of the WSA design plane."""
    model = WSAModel(technology)
    size = lattice_size if lattice_size is not None else model.max_lattice_size(1)
    design = WSADesign(technology=technology, lattice_size=size, pes_per_chip=1)
    return {
        "design_model": "WSAModel (P = 1)",
        "lattice_size": design.lattice_size,
        "pes_per_chip": design.pes_per_chip,
        "pins_used": design.pins_used,
        "pin_budget": technology.Pi,
        "chip_area_used": design.chip_area_used,
        "feasible": design.is_feasible(),
        "updates_per_chip_per_second": design.updates_per_chip_per_second,
        "main_memory_bandwidth_bits_per_tick": (
            design.main_memory_bandwidth_bits_per_tick
        ),
    }


def _wsa_design(
    technology: ChipTechnology, lattice_size: int | None
) -> Mapping[str, object]:
    """The throughput-optimal WSA corner (P = 4, L = 785 for the paper)."""
    model = WSAModel(technology)
    design = model.optimal_design()
    if lattice_size is not None:
        design = WSADesign(
            technology=technology,
            lattice_size=lattice_size,
            pes_per_chip=design.pes_per_chip,
        )
    corner = model.corner()
    return {
        "design_model": "WSAModel",
        "lattice_size": design.lattice_size,
        "pes_per_chip": design.pes_per_chip,
        "pins_used": design.pins_used,
        "pin_budget": technology.Pi,
        "chip_area_used": design.chip_area_used,
        "feasible": design.is_feasible(),
        "updates_per_chip_per_second": design.updates_per_chip_per_second,
        "main_memory_bandwidth_bits_per_tick": (
            design.main_memory_bandwidth_bits_per_tick
        ),
        "corner": {"lattice_size": corner.x, "pes_per_chip": corner.p},
    }


def _spa_design(
    technology: ChipTechnology, lattice_size: int | None
) -> Mapping[str, object]:
    """The pin-optimal SPA split at the WSA-optimal lattice by default."""
    size = (
        lattice_size
        if lattice_size is not None
        else WSAModel(technology).optimal_design().lattice_size
    )
    design = SPAModel(technology).optimal_design(lattice_size=size)
    return {
        "design_model": "SPAModel",
        "lattice_size": design.lattice_size,
        "slice_width": design.slice_width,
        "pes_wide": design.pes_wide,
        "pes_deep": design.pes_deep,
        "pes_per_chip": design.pes_per_chip,
        "pins_used": design.pins_used,
        "pin_budget": technology.Pi,
        "chip_area_used": design.chip_area_used,
        "feasible": design.is_feasible(),
        "throughput_per_chip": design.throughput_per_chip,
        "main_memory_bandwidth_bits_per_tick": (
            design.main_memory_bandwidth_bits_per_tick
        ),
        "storage_area_per_pe": design.storage_area_per_pe,
    }


def _wsa_e_design(
    technology: ChipTechnology, lattice_size: int | None
) -> Mapping[str, object]:
    """The extensible design at a large lattice (L = 1000 by default)."""
    size = lattice_size if lattice_size is not None else 1000
    design = WSAEModel(technology).design(lattice_size=size)
    return {
        "design_model": "WSAEModel",
        "lattice_size": design.lattice_size,
        "pes_per_chip": design.pes_per_chip,
        "pins_used": design.pins_used,
        "pin_budget": technology.Pi,
        "feasible": design.is_feasible(),
        "delay_sites_per_stage": design.delay_sites_per_stage,
        "storage_area_per_pe": design.storage_area_per_pe,
        "storage_area_per_pe_commercial": design.storage_area_per_pe_commercial,
        "update_rate": design.update_rate,
        "main_memory_bandwidth_bits_per_tick": (
            design.main_memory_bandwidth_bits_per_tick
        ),
    }


# -- design curves and comparison rows -------------------------------------------


def _wsa_curves(technology: ChipTechnology) -> list[DesignCurve]:
    """The (L, P) constraint curves of the section 6.1 figure."""
    return WSAModel(technology).design_curves()


def _spa_curves(technology: ChipTechnology) -> list[DesignCurve]:
    """The (W, P) constraint curves of the section 6.2 figure."""
    return SPAModel(technology).design_curves()


def _wsa_summary(
    technology: ChipTechnology, lattice_size: int
) -> ArchitectureSummary:
    """WSA comparison row, always at its own optimal operating point."""
    return compare_optimal_designs(technology).wsa_summary


def _spa_summary(
    technology: ChipTechnology, lattice_size: int
) -> ArchitectureSummary:
    """SPA comparison row at the WSA-optimal lattice (the E5 pairing)."""
    return compare_optimal_designs(technology).spa_summary


def _wsa_e_summary(
    technology: ChipTechnology, lattice_size: int
) -> ArchitectureSummary:
    """WSA-E comparison row at the requested lattice (the E6 pairing)."""
    wsa_e = compare_extensible(
        lattice_size=lattice_size, technology=technology
    ).wsa_e
    return ArchitectureSummary(
        name="WSA-E",
        pes_per_chip=wsa_e.pes_per_chip,
        throughput_per_chip=technology.F,
        bandwidth_bits_per_tick=wsa_e.main_memory_bandwidth_bits_per_tick,
        storage_area_per_pe=wsa_e.storage_area_per_pe,
        lattice_size=wsa_e.lattice_size,
        access_pattern="strict raster scan",
        extensible=True,
        notes="delay line off-chip; 1 PE/chip by pin constraint",
    )


# -- the registry entries --------------------------------------------------------

SERIAL = register(
    MachineSpec(
        name="serial",
        title="Serial pipelined architecture",
        paper_section="3",
        engine_cls=SerialPipelineEngine,
        capabilities=MachineCapabilities(),
        parameters=(
            "pipeline_depth",
            "clock_hz",
            "post_collide",
            "backend",
            "workers",
            "recorder",
        ),
        design_summary=_serial_design,
        predicted_ticks=_serial_predicted_ticks,
        steady_updates_per_tick=_peak_updates_per_tick,
    )
)

WSA = register(
    MachineSpec(
        name="wsa",
        title="Wide serial architecture",
        paper_section="4",
        engine_cls=WideSerialEngine,
        capabilities=MachineCapabilities(),
        parameters=(
            "lanes",
            "pipeline_depth",
            "clock_hz",
            "post_collide",
            "backend",
            "workers",
            "recorder",
        ),
        design_summary=_wsa_design,
        predicted_ticks=_wsa_predicted_ticks,
        steady_updates_per_tick=_peak_updates_per_tick,
        design_curves=_wsa_curves,
        summary=_wsa_summary,
    )
)

SPA = register(
    MachineSpec(
        name="spa",
        title="Sternberg partitioned architecture",
        paper_section="5",
        engine_cls=PartitionedEngine,
        capabilities=MachineCapabilities(
            tickwise=False, side_channel=True, degradable=True
        ),
        parameters=(
            "slice_width",
            "pipeline_depth",
            "clock_hz",
            "post_collide",
            "failed_slices",
            "backend",
            "workers",
            "recorder",
        ),
        default_params={"slice_width": 8},
        design_summary=_spa_design,
        predicted_ticks=_spa_predicted_ticks,
        steady_updates_per_tick=_peak_updates_per_tick,
        design_curves=_spa_curves,
        summary=_spa_summary,
    )
)

WSA_E = register(
    MachineSpec(
        name="wsa-e",
        title="Extensible serial architecture (off-chip delay)",
        paper_section="6.3",
        engine_cls=ExtensibleSerialEngine,
        capabilities=MachineCapabilities(),
        parameters=(
            "pipeline_depth",
            "commercial_density",
            "clock_hz",
            "post_collide",
            "backend",
            "workers",
            "recorder",
        ),
        design_summary=_wsa_e_design,
        predicted_ticks=_serial_predicted_ticks,
        steady_updates_per_tick=_peak_updates_per_tick,
        summary=_wsa_e_summary,
    )
)
