"""The machine registry: every architecture, keyed by name.

One flat, ordered mapping from machine name to
:class:`~repro.machines.spec.MachineSpec`.  Everything that enumerates
architectures — the CLI, the comparison tables, the sanitizer
cross-checks, the fault campaign, the benchmarks — iterates
:func:`specs` or calls :func:`create` instead of importing engine
classes, so adding a machine means registering one spec, not editing
six call sites.  :func:`unregistered_engines` is the completeness
check CI runs: an engine subclass left out of the registry fails the
bench-smoke sweep.
"""

from __future__ import annotations

from repro.engines.streaming_core import StreamingEngineCore
from repro.lgca.automaton import SiteModel
from repro.machines.spec import MachineSpec
from repro.util.errors import ConfigError

__all__ = [
    "register",
    "get",
    "names",
    "specs",
    "create",
    "unregistered_engines",
]

_REGISTRY: dict[str, MachineSpec] = {}


def register(spec: MachineSpec) -> MachineSpec:
    """Add a machine to the registry; returns the spec for chaining."""
    if spec.name in _REGISTRY:
        raise ConfigError(f"machine {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def names() -> list[str]:
    """Registered machine names, in registration order."""
    return list(_REGISTRY)


def specs() -> list[MachineSpec]:
    """All registered specs, in registration order."""
    return list(_REGISTRY.values())


def get(name: str) -> MachineSpec:
    """Look up one machine by name.

    Raises :class:`~repro.util.errors.ConfigError` (→ CLI exit 2) for
    unknown names, listing what is registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown machine {name!r}; registered machines: "
            f"{', '.join(names())}"
        ) from None


def create(name: str, model: SiteModel, **params: object) -> StreamingEngineCore:
    """Construct a machine's engine by registry name (the one-stop path)."""
    return get(name).create(model, **params)


def unregistered_engines() -> list[str]:
    """Engine classes exported by :mod:`repro.engines` but not registered.

    The completeness check: every concrete
    :class:`~repro.engines.streaming_core.StreamingEngineCore` subclass
    in the engines package's public surface must be claimed by exactly
    one spec.  Returns the offenders' class names (empty = complete).
    """
    import repro.engines as engines_pkg

    registered = {spec.engine_cls for spec in specs()}
    missing = []
    for attr in engines_pkg.__all__:
        obj = getattr(engines_pkg, attr)
        if (
            isinstance(obj, type)
            and issubclass(obj, StreamingEngineCore)
            and obj is not StreamingEngineCore
            and obj not in registered
        ):
            missing.append(obj.__name__)
    return missing
