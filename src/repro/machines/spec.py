"""The machine abstraction: design model + simulator + capabilities.

The paper pairs every architecture with two descriptions — a
closed-form design model (area/pin feasibility, predicted cycle counts
and update rate R) and an operational dataflow — and compares the
machines at their optimal operating points.  A :class:`MachineSpec`
binds both halves together with the machine's capability flags, so
design-space sweeps, simulations, fault campaigns, and benchmarks can
all enumerate machines uniformly through the registry
(:mod:`repro.machines.registry`) instead of importing each engine and
model by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.comparison import ArchitectureSummary
from repro.core.design_space import DesignCurve
from repro.core.technology import PAPER_TECHNOLOGY, ChipTechnology
from repro.engines.streaming_core import StreamingEngineCore
from repro.lgca.automaton import SiteModel
from repro.util.errors import ConfigError

__all__ = ["MachineCapabilities", "MachineSpec", "SCHEMA_NAME", "SCHEMA_VERSION"]

#: schema tag stamped into every ``describe()`` payload
SCHEMA_NAME = "repro-machine"
#: bump when the payload layout changes incompatibly
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class MachineCapabilities:
    """What a machine's simulator supports, as data.

    Attributes
    ----------
    backends:
        Kernel backends the engine accepts (``"reference"`` always;
        ``"bitplane"`` for the multi-spin coded kernels, ``"parallel"``
        for those kernels tiled over a thread pool).
    fault_hooks:
        Whether ``post_collide`` fault-injection hooks are accepted
        (reference backend only, as everywhere).
    tickwise:
        Whether ``run(..., tickwise=True)`` performs a tick-accurate
        delay-line simulation.
    side_channel:
        Whether the machine moves bits over slice-boundary side
        channels (SPA) in addition to the main-memory streams.
    degradable:
        Whether the machine supports graceful degradation
        (``failed_slices`` remapping).
    """

    backends: tuple[str, ...] = ("reference", "bitplane", "parallel")
    fault_hooks: bool = True
    tickwise: bool = True
    side_channel: bool = False
    degradable: bool = False

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping of the capability flags.

        ``backend_options`` maps each supported backend to the extra
        keyword options it accepts (e.g. ``"parallel"`` -> ``["workers"]``),
        read from the backend registry so the payload can never drift
        from what :func:`~repro.lgca.backends.make_stepper` enforces.
        Backends with no options are omitted from the mapping.
        """
        from repro.lgca.backends import available_backends

        return {
            "backends": list(self.backends),
            "backend_options": {
                b.name: list(b.options)
                for b in available_backends()
                if b.name in self.backends and b.options
            },
            "fault_hooks": self.fault_hooks,
            "tickwise": self.tickwise,
            "side_channel": self.side_channel,
            "degradable": self.degradable,
        }


@dataclass(frozen=True)
class MachineSpec:
    """One architecture: its simulator, design model, and capabilities.

    Attributes
    ----------
    name:
        Registry key (``"serial"``, ``"wsa"``, ``"spa"``, ``"wsa-e"``).
    title:
        Human-readable architecture name.
    paper_section:
        Where the paper introduces the machine.
    engine_cls:
        The :class:`~repro.engines.streaming_core.StreamingEngineCore`
        subclass simulating the machine.
    capabilities:
        The simulator's :class:`MachineCapabilities`.
    parameters:
        Constructor keywords :meth:`create` accepts beyond the lattice
        model (the engine's own signature, minus ``model``).
    default_params:
        Defaults merged under the caller's keywords in :meth:`create`
        (used where the engine has no default of its own, e.g. the
        SPA's ``slice_width``).
    design_summary:
        Closed-form design-model summary at a technology and optional
        lattice size — feasibility, pins, area, predicted R — as a
        JSON-ready mapping (from ``core.wsa`` / ``core.spa`` /
        ``core.wsa_e`` / ``core.throughput``).
    predicted_ticks:
        Closed-form major-cycle count for ``generations`` updates on a
        constructed engine's geometry.  The simulator's measured
        ``stats.ticks`` must equal this exactly (property-tested).
    steady_updates_per_tick:
        Architectural peak updates per tick (one per PE); measured
        ``stats.updates_per_tick`` never exceeds it.
    design_curves:
        Constraint curves of the machine's design plane (section 6
        figures), or None when the machine has no free design plane.
    summary:
        Comparison-table row builder for
        :func:`repro.core.comparison.summarize_architectures`, or None
        for machines that don't appear in the section 6.3 tables (the
        plain serial pipeline is the P = 1 WSA).
    """

    name: str
    title: str
    paper_section: str
    engine_cls: type[StreamingEngineCore]
    capabilities: MachineCapabilities
    parameters: tuple[str, ...]
    design_summary: Callable[[ChipTechnology, int | None], Mapping[str, object]]
    predicted_ticks: Callable[[StreamingEngineCore, int], int]
    steady_updates_per_tick: Callable[[StreamingEngineCore], float]
    default_params: Mapping[str, object] = field(default_factory=dict)
    design_curves: Callable[[ChipTechnology], list[DesignCurve]] | None = None
    summary: Callable[[ChipTechnology, int], ArchitectureSummary] | None = None

    def create(self, model: SiteModel, **params: object) -> StreamingEngineCore:
        """Construct the machine's engine for a lattice model.

        Keywords are validated against :attr:`parameters` so every
        machine rejects unknown options with the same
        :class:`~repro.util.errors.ConfigError` instead of a per-class
        ``TypeError``.
        """
        unknown = sorted(set(params) - set(self.parameters))
        if unknown:
            raise ConfigError(
                f"machine {self.name!r} does not accept parameter(s) "
                f"{', '.join(unknown)}; accepted: {', '.join(self.parameters)}"
            )
        merged: dict[str, object] = {**dict(self.default_params), **params}
        return self.engine_cls(model, **merged)  # type: ignore[arg-type]

    def describe(
        self,
        technology: ChipTechnology = PAPER_TECHNOLOGY,
        lattice_size: int | None = None,
    ) -> dict[str, object]:
        """Schema-versioned JSON-ready description of the machine."""
        return {
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "name": self.name,
            "title": self.title,
            "paper_section": self.paper_section,
            "engine": self.engine_cls.__name__,
            "parameters": {
                "accepted": list(self.parameters),
                "defaults": dict(self.default_params),
            },
            "capabilities": self.capabilities.to_dict(),
            "design": dict(self.design_summary(technology, lattice_size)),
        }
