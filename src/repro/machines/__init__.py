"""The machine registry: design models + engine simulators, unified.

The paper's comparison methodology (sections 3–6.3) treats each
architecture as one object with two faces — a closed-form design model
and an operational machine.  This package mirrors that:

* :mod:`repro.machines.spec` — :class:`MachineSpec` binds an engine
  class, its design model, exact predicted cycle counts, and capability
  flags; :class:`MachineCapabilities` is the flag set.
* :mod:`repro.machines.registry` — the name-keyed registry:
  :func:`get` / :func:`names` / :func:`specs` / :func:`create`, plus
  the :func:`unregistered_engines` completeness check CI runs.
* :mod:`repro.machines.catalog` — registers the paper's four machines:
  ``serial``, ``wsa``, ``spa``, ``wsa-e``.

Construct engines through the registry::

    from repro import machines
    engine = machines.create("wsa", model, lanes=4, pipeline_depth=2)
    frame, stats = engine.run(state, 8)

The CLI surfaces the same data as ``repro machines list`` and
``repro machines describe <name> --json``.
"""

from repro.machines.spec import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    MachineCapabilities,
    MachineSpec,
)
from repro.machines.registry import (
    create,
    get,
    names,
    register,
    specs,
    unregistered_engines,
)
from repro.machines import catalog  # noqa: F401  — registers the built-ins

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "MachineCapabilities",
    "MachineSpec",
    "register",
    "get",
    "names",
    "specs",
    "create",
    "unregistered_engines",
    "catalog",
]
