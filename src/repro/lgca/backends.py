"""Kernel backend registry: uniform selection of LGCA stepping engines.

Two backends ship with the repo:

``"reference"``
    The verified per-site kernels (:mod:`repro.lgca.hpp`,
    :mod:`repro.lgca.fhp`): one ``uint8`` per site, table-lookup
    collision.  This is the golden semantics everything else is tested
    against.
``"bitplane"``
    The multi-spin coded kernels (:mod:`repro.lgca.bitplane`): one site
    per *bit* of a ``uint64`` word, collision as boolean plane algebra
    compiled from the same verified tables.  Bit-identical to the
    reference (enforced by the property tests) and much faster.

Both are exposed through the same :class:`KernelStepper` interface —
stateless functional kernels over site-state fields — so
:class:`repro.lgca.automaton.LatticeGasAutomaton`, the engine simulators
in :mod:`repro.engines`, and the CLI select a backend by name without
knowing its storage format.  Steppers preallocate their double buffers
at construction, so steady-state stepping performs no array allocation;
the arrays they return are views of internal buffers, invalidated by the
next call — callers that retain states must copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.lgca.bitplane import BitplaneKernel
from repro.lgca.bits import bounce_back_table
from repro.util.hotpath import hot_path

__all__ = [
    "KernelStepper",
    "Backend",
    "ReferenceStepper",
    "BitplaneStepper",
    "register_backend",
    "get_backend",
    "available_backends",
    "make_stepper",
    "DEFAULT_BACKEND",
]

#: The backend used when none is requested.
DEFAULT_BACKEND = "reference"


@runtime_checkable
class KernelStepper(Protocol):
    """A stateless stepping kernel over site-state fields.

    Implementations hold preallocated working storage but no gas state:
    ``step``/``run`` are pure functions of their arguments (plus the RNG
    stream).  Returned arrays may alias internal buffers and are only
    valid until the next call.
    """

    def step(
        self,
        state: np.ndarray,
        t: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Advance ``state`` one generation (collide at time ``t``, propagate)."""
        ...

    def run(
        self,
        state: np.ndarray,
        generations: int,
        t0: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Advance ``state`` by ``generations`` steps starting at time ``t0``."""
        ...


@dataclass(frozen=True)
class Backend:
    """A named stepper factory in the registry.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"bitplane"``.
    description:
        One line for ``--help`` output and docs.
    factory:
        ``factory(model, obstacles)`` returning a :class:`KernelStepper`.
    """

    name: str
    description: str
    factory: Callable[[object, object], KernelStepper]


class ReferenceStepper:
    """The verified per-site kernels behind the :class:`KernelStepper` interface.

    Semantically identical to the historical ``LatticeGasAutomaton.step``
    loop (collide via table lookup, solid sites bounce back the
    *pre-collision* state, then propagate), restructured around two
    preallocated state buffers so steady-state stepping does not
    allocate.
    """

    def __init__(self, model: object, obstacles: object = None):
        self.model = model
        rows, cols = model.rows, model.cols  # type: ignore[attr-defined]
        self._buffers = (
            np.empty((rows, cols), dtype=np.uint8),
            np.empty((rows, cols), dtype=np.uint8),
        )
        self._collided = np.empty((rows, cols), dtype=np.uint8)
        mask = getattr(obstacles, "mask", obstacles)
        if mask is not None and np.any(mask):
            self._solid: np.ndarray | None = np.asarray(mask, dtype=bool)
            nc: int = model.num_channels  # type: ignore[attr-defined]
            self._bounce = bounce_back_table(nc).astype(np.uint8)
            self._bounced = np.empty((rows, cols), dtype=np.uint8)
        else:
            self._solid = None

    @hot_path
    def _advance(
        self,
        state: np.ndarray,
        out: np.ndarray,
        t: int,
        rng: np.random.Generator | None,
    ) -> np.ndarray:
        """One pre-validated generation from ``state`` into ``out``."""
        collided = self._collided
        self.model.collide(state, t, rng, out=collided, check=False)  # type: ignore[attr-defined]
        if self._solid is not None:
            np.take(self._bounce, state, out=self._bounced)
            np.copyto(collided, self._bounced, where=self._solid)
        return self.model.propagate(collided, out=out, check=False)  # type: ignore[attr-defined]

    @hot_path
    def step(
        self,
        state: np.ndarray,
        t: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        state = self.model.check_state(state)  # type: ignore[attr-defined]
        return self._advance(state, self._buffers[0], t, rng)

    @hot_path
    def run(
        self,
        state: np.ndarray,
        generations: int,
        t0: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        state = self.model.check_state(state)  # type: ignore[attr-defined]
        cur: np.ndarray = state
        for i in range(generations):
            # Never write into the caller's array: generation 0 targets
            # buffer 0, and the buffers alternate from there.
            out = self._buffers[i % 2]
            cur = self._advance(cur, out, t0 + i, rng)
        return cur


class BitplaneStepper:
    """Multi-spin coded stepping behind the :class:`KernelStepper` interface.

    ``step`` pays a pack/unpack conversion per call; ``run`` packs once,
    advances all generations as word-level plane operations on two
    preallocated plane buffers, and unpacks once — that is the fast path
    the benchmarks measure.
    """

    def __init__(self, model: object, obstacles: object = None):
        self.model = model
        self.kernel = BitplaneKernel(model, obstacles)  # type: ignore[arg-type]
        self._planes = (self.kernel.alloc_planes(), self.kernel.alloc_planes())
        self._field = np.empty((model.rows, model.cols), dtype=np.uint8)  # type: ignore[attr-defined]

    @hot_path
    def step(
        self,
        state: np.ndarray,
        t: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        return self.run(state, 1, t, rng)

    @hot_path
    def run(
        self,
        state: np.ndarray,
        generations: int,
        t0: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        state = self.model.check_state(state)  # type: ignore[attr-defined]
        if generations == 0:
            return state
        src, dst = self._planes
        src[...] = self.kernel.pack(state)
        for i in range(generations):
            self.kernel.step_into(src, dst, t0 + i, rng)
            src, dst = dst, src
        return self.kernel.unpack(src, out=self._field)


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Add a backend to the registry (name must be unused); returns it."""
    if backend.name in _REGISTRY:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a backend by name, with a helpful error listing the choices."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        )
    return backend


def available_backends() -> tuple[Backend, ...]:
    """All registered backends, sorted by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def make_stepper(
    model: object,
    obstacles: object = None,
    backend: str = DEFAULT_BACKEND,
) -> KernelStepper:
    """Build a stepper for ``model`` (and optional obstacles) by backend name."""
    return get_backend(backend).factory(model, obstacles)


register_backend(
    Backend(
        name="reference",
        description="verified per-site table-lookup kernels (golden semantics)",
        factory=ReferenceStepper,
    )
)
register_backend(
    Backend(
        name="bitplane",
        description="multi-spin coded kernels: 64 sites per word, boolean-algebra collision",
        factory=BitplaneStepper,
    )
)
