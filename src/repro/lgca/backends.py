"""Kernel backend registry: uniform selection of LGCA stepping engines.

Three backends ship with the repo:

``"reference"``
    The verified per-site kernels (:mod:`repro.lgca.hpp`,
    :mod:`repro.lgca.fhp`): one ``uint8`` per site, table-lookup
    collision.  This is the golden semantics everything else is tested
    against.
``"bitplane"``
    The multi-spin coded kernels (:mod:`repro.lgca.bitplane`): one site
    per *bit* of a ``uint64`` word, collision as boolean plane algebra
    compiled from the same verified tables.  Bit-identical to the
    reference (enforced by the property tests) and much faster.
``"parallel"``
    Row-slab tiles of the bit-plane kernels on a persistent thread pool
    (:mod:`repro.lgca.parallel`), with direct-write halo exchange.
    Bit-identical to ``"bitplane"`` at every worker count; takes the
    ``workers`` option (a positive int or ``"auto"``).

All are exposed through the same :class:`KernelStepper` interface —
stateless functional kernels over site-state fields — so
:class:`repro.lgca.automaton.LatticeGasAutomaton`, the engine simulators
in :mod:`repro.engines`, and the CLI select a backend by name without
knowing its storage format.  Steppers preallocate their double buffers
at construction, so steady-state stepping performs no array allocation;
the arrays they return are views of internal buffers, invalidated by the
next call — callers that retain states must copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Protocol, runtime_checkable

import numpy as np

from repro.lgca.bitplane import BitplaneKernel
from repro.lgca.bits import bounce_back_table
from repro.telemetry import NULL_RECORDER, Recorder
from repro.util.errors import ConfigError
from repro.util.hotpath import hot_path

__all__ = [
    "KernelStepper",
    "Backend",
    "ReferenceStepper",
    "BitplaneStepper",
    "register_backend",
    "get_backend",
    "available_backends",
    "check_backend_options",
    "make_stepper",
    "DEFAULT_BACKEND",
]

#: The backend used when none is requested.
DEFAULT_BACKEND = "reference"


@runtime_checkable
class KernelStepper(Protocol):
    """A stateless stepping kernel over site-state fields.

    Implementations hold preallocated working storage but no gas state:
    ``step``/``run`` are pure functions of their arguments (plus the RNG
    stream).  Returned arrays may alias internal buffers and are only
    valid until the next call.
    """

    def step(
        self,
        state: np.ndarray,
        t: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Advance ``state`` one generation (collide at time ``t``, propagate)."""
        ...

    def run(
        self,
        state: np.ndarray,
        generations: int,
        t0: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Advance ``state`` by ``generations`` steps starting at time ``t0``."""
        ...


@dataclass(frozen=True)
class Backend:
    """A named stepper factory in the registry.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"bitplane"``.
    description:
        One line for ``--help`` output and docs.
    factory:
        ``factory(model, obstacles, **options)`` returning a
        :class:`KernelStepper`.
    options:
        Keyword options the factory accepts beyond model and obstacles
        (e.g. ``("workers",)`` for ``"parallel"``).  Callers are
        validated against this tuple by :func:`check_backend_options`,
        so every layer rejects unsupported options with the same
        :class:`~repro.util.errors.ConfigError`.
    """

    name: str
    description: str
    factory: Callable[..., KernelStepper]
    options: tuple[str, ...] = ()


class ReferenceStepper:
    """The verified per-site kernels behind the :class:`KernelStepper` interface.

    Semantically identical to the historical ``LatticeGasAutomaton.step``
    loop (collide via table lookup, solid sites bounce back the
    *pre-collision* state, then propagate), restructured around two
    preallocated state buffers so steady-state stepping does not
    allocate.

    ``recorder`` (optional) receives per-generation kernel timings on
    the ``kernel.reference.tick_seconds`` timer and a generation count;
    handles and the clock are pre-bound here so the hot loop stays
    allocation-free, and the default :data:`~repro.telemetry.NULL_RECORDER`
    makes recording a no-op.
    """

    def __init__(
        self,
        model: object,
        obstacles: object = None,
        recorder: Recorder | None = None,
    ):
        self.model = model
        rows, cols = model.rows, model.cols  # type: ignore[attr-defined]
        self._buffers = (
            np.empty((rows, cols), dtype=np.uint8),
            np.empty((rows, cols), dtype=np.uint8),
        )
        self._collided = np.empty((rows, cols), dtype=np.uint8)
        mask = getattr(obstacles, "mask", obstacles)
        if mask is not None and np.any(mask):
            self._solid: np.ndarray | None = np.asarray(mask, dtype=bool)
            nc: int = model.num_channels  # type: ignore[attr-defined]
            self._bounce = bounce_back_table(nc).astype(np.uint8)
            self._bounced = np.empty((rows, cols), dtype=np.uint8)
        else:
            self._solid = None
        self._out_sel = 0
        rec = recorder if recorder is not None else NULL_RECORDER
        self._clk = rec.clock
        self._tick_timer = rec.timer("kernel.reference.tick_seconds")
        self._generations = rec.counter("kernel.reference.generations")

    def _next_buffer(self, state: np.ndarray) -> np.ndarray:
        """The write target for the next generation, never ``state`` itself.

        The same ping-pong idiom as ``PipelineStage.process``: the two
        preallocated buffers alternate between calls, so chained steps
        (``s = stepper.step(stepper.step(s))`` or ``step`` then ``run``)
        never collide into the array they are reading.  Returned states
        are views of this pair, valid until the next-but-one call —
        callers that retain them must copy.
        """
        sel = self._out_sel
        if self._buffers[sel] is state:
            sel = 1 - sel
        self._out_sel = 1 - sel
        return self._buffers[sel]

    @hot_path
    def _advance(
        self,
        state: np.ndarray,
        out: np.ndarray,
        t: int,
        rng: np.random.Generator | None,
    ) -> np.ndarray:
        """One pre-validated generation from ``state`` into ``out``."""
        clk = self._clk
        t_start = clk()
        collided = self._collided
        self.model.collide(state, t, rng, out=collided, check=False)  # type: ignore[attr-defined]
        if self._solid is not None:
            np.take(self._bounce, state, out=self._bounced)
            np.copyto(collided, self._bounced, where=self._solid)
        result = self.model.propagate(collided, out=out, check=False)  # type: ignore[attr-defined]
        self._tick_timer.record(clk() - t_start)
        self._generations.add(1)
        return result

    @hot_path
    def step(
        self,
        state: np.ndarray,
        t: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        state = self.model.check_state(state)  # type: ignore[attr-defined]
        return self._advance(state, self._next_buffer(state), t, rng)

    @hot_path
    def run(
        self,
        state: np.ndarray,
        generations: int,
        t0: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        state = self.model.check_state(state)  # type: ignore[attr-defined]
        cur: np.ndarray = state
        for i in range(generations):
            cur = self._advance(cur, self._next_buffer(cur), t0 + i, rng)
        return cur


class BitplaneStepper:
    """Multi-spin coded stepping behind the :class:`KernelStepper` interface.

    ``step`` pays a pack/unpack conversion per call; ``run`` packs once,
    advances all generations as word-level plane operations on two
    preallocated plane buffers, and unpacks once — that is the fast path
    the benchmarks measure.

    ``recorder`` (optional) receives per-generation kernel timings on
    the ``kernel.bitplane.tick_seconds`` timer through pre-bound
    handles; the default null recorder makes recording a no-op.
    """

    def __init__(
        self,
        model: object,
        obstacles: object = None,
        recorder: Recorder | None = None,
    ):
        self.model = model
        self.kernel = BitplaneKernel(model, obstacles)  # type: ignore[arg-type]
        self._planes = (self.kernel.alloc_planes(), self.kernel.alloc_planes())
        self._field = np.empty((model.rows, model.cols), dtype=np.uint8)  # type: ignore[attr-defined]
        rec = recorder if recorder is not None else NULL_RECORDER
        self._clk = rec.clock
        self._tick_timer = rec.timer("kernel.bitplane.tick_seconds")
        self._generations = rec.counter("kernel.bitplane.generations")

    @hot_path
    def step(
        self,
        state: np.ndarray,
        t: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        return self.run(state, 1, t, rng)

    @hot_path
    def run(
        self,
        state: np.ndarray,
        generations: int,
        t0: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        state = self.model.check_state(state)  # type: ignore[attr-defined]
        if generations == 0:
            return state
        clk = self._clk
        tick_timer = self._tick_timer
        src, dst = self._planes
        src[...] = self.kernel.pack(state)
        for i in range(generations):
            t_start = clk()
            self.kernel.step_into(src, dst, t0 + i, rng)
            tick_timer.record(clk() - t_start)
            src, dst = dst, src
        self._generations.add(generations)
        return self.kernel.unpack(src, out=self._field)


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Add a backend to the registry (name must be unused); returns it.

    Raises
    ------
    ConfigError
        When the name is already registered — silently replacing a
        backend would let a stale import swap the semantics everything
        else was validated against.
    """
    if backend.name in _REGISTRY:
        raise ConfigError(
            f"backend {backend.name!r} is already registered; "
            f"registered backends: {', '.join(sorted(_REGISTRY))}"
        )
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a backend by name, with a helpful error listing the choices."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ConfigError(
            f"unknown backend {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        )
    return backend


def available_backends() -> tuple[Backend, ...]:
    """All registered backends, sorted by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def check_backend_options(
    backend: Backend | str, options: Mapping[str, object]
) -> dict[str, object]:
    """Validate per-backend options; returns the ones that are actually set.

    ``None`` values mean "not requested" and are dropped, so callers can
    plumb a uniform keyword set (e.g. ``workers=None``) through every
    layer.  Any *set* option the backend does not declare raises the
    same :class:`~repro.util.errors.ConfigError` everywhere.
    """
    if isinstance(backend, str):
        backend = get_backend(backend)
    given = {key: value for key, value in options.items() if value is not None}
    unknown = sorted(set(given) - set(backend.options))
    if unknown:
        accepted = ", ".join(backend.options) if backend.options else "none"
        raise ConfigError(
            f"backend {backend.name!r} does not accept option(s) "
            f"{', '.join(unknown)}; accepted: {accepted}"
        )
    return given


def make_stepper(
    model: object,
    obstacles: object = None,
    backend: str = DEFAULT_BACKEND,
    recorder: Recorder | None = None,
    **options: object,
) -> KernelStepper:
    """Build a stepper for ``model`` (and optional obstacles) by backend name.

    Extra keywords are per-backend options (``workers`` for
    ``"parallel"``); unset (``None``) options are ignored and options a
    backend does not declare raise
    :class:`~repro.util.errors.ConfigError`.  ``recorder`` is a
    *universal* keyword, not a backend option: every shipped stepper
    accepts it and reports kernel/halo timings through it (it is only
    forwarded when set, so third-party factories without the parameter
    keep working under the default null recorder).
    """
    chosen = get_backend(backend)
    given = check_backend_options(chosen, options)
    if recorder is not None:
        given["recorder"] = recorder
    return chosen.factory(model, obstacles, **given)


def _parallel_factory(
    model: object,
    obstacles: object = None,
    workers: object = "auto",
    recorder: Recorder | None = None,
) -> KernelStepper:
    """Build a :class:`~repro.lgca.parallel.ParallelStepper` (lazy import)."""
    from repro.lgca.parallel import ParallelStepper

    return ParallelStepper(model, obstacles, workers=workers, recorder=recorder)  # type: ignore[arg-type]


register_backend(
    Backend(
        name="reference",
        description="verified per-site table-lookup kernels (golden semantics)",
        factory=ReferenceStepper,
    )
)
register_backend(
    Backend(
        name="bitplane",
        description="multi-spin coded kernels: 64 sites per word, boolean-algebra collision",
        factory=BitplaneStepper,
    )
)
register_backend(
    Backend(
        name="parallel",
        description="bit-plane kernels tiled over row slabs on a persistent thread pool",
        factory=_parallel_factory,
        options=("workers",),
    )
)
