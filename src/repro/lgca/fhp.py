"""The FHP lattice gas (Frisch, Hasslacher, Pomeau) — reference [3].

Six unit-velocity channels on a hexagonal lattice (plus an optional rest
particle, the 7-bit variant), the model the paper singles out because "in
a two-dimensional hexagonally connected lattice, it has been shown that
the Navier-Stokes equation is satisfied in the limit of large lattice
size".

Collision rules implemented:

* **FHP-6 (FHP-I)** — head-on two-body collisions ``{i, i+3}`` scatter to
  the pair rotated ±60° (the chirality must be chosen per collision; the
  driver alternates it deterministically or draws it pseudo-randomly),
  and symmetric three-body collisions ``{i, i+2, i+4} <-> {i+1, i+3, i+5}``.
* **FHP-7 (FHP-II)** — FHP-6 rules with the rest particle as a spectator,
  plus the rest-particle pair creation/annihilation
  ``{rest, i} <-> {i-1, i+1}``.

Each fixed-chirality table is a *permutation* of the state space (checked
in tests) and conserves mass and momentum (checked at construction by
:class:`repro.lgca.collision.CollisionTable`).

Storage layout: the hexagonal lattice lives on a rectangular grid with
odd rows shifted half a cell right (see
:class:`repro.lattice.geometry.HexagonalLattice`).  Channel order is
counter-clockwise from +x; see ``FHP_VELOCITIES``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.lattice.geometry import FHP_DIRECTIONS
from repro.lgca.bits import pack_channels, unpack_channels
from repro.lgca.collision import CollisionTable
from repro.util.validation import check_positive

__all__ = [
    "FHP_VELOCITIES",
    "fhp6_collision_tables",
    "fhp7_collision_tables",
    "fhp_saturated_tables",
    "FHPModel",
]

#: (6, 2) physical velocity vectors per moving channel (ccw from +x).
FHP_VELOCITIES = FHP_DIRECTIONS

#: Velocity table for the 7-bit model: 6 movers + rest particle (bit 6).
FHP7_VELOCITIES = np.vstack([FHP_DIRECTIONS, [(0.0, 0.0)]])

#: storage-grid row offset per channel (identical for both row parities).
_ROW_OFFSET = [0, -1, -1, 0, 1, 1]
#: storage-grid column offset per channel for even source rows.
_COL_OFFSET_EVEN = [1, 0, -1, -1, -1, 0]
#: ... and for odd source rows (odd rows shifted half a cell right).
_COL_OFFSET_ODD = [1, 1, 0, -1, 0, 1]

_REST_BIT = 1 << 6
_TRIAD_A = 0b010101  # channels {0, 2, 4}
_TRIAD_B = 0b101010  # channels {1, 3, 5}


def _rotate_moving(state: int, amount: int) -> int:
    """Rotate the 6 moving-channel bits of ``state`` by ``amount`` (ccw)."""
    moving = state & 0b111111
    amount %= 6
    rotated = ((moving << amount) | (moving >> (6 - amount))) & 0b111111
    return (state & ~0b111111) | rotated


def fhp6_collision_tables() -> tuple[CollisionTable, CollisionTable]:
    """The two fixed-chirality FHP-I tables ``(left, right)``.

    ``left`` rotates head-on pairs +60° (counter-clockwise), ``right``
    −60°.  Averaging the two chiralities restores the hexagonal-lattice
    parity symmetry the hydrodynamic limit needs.
    """
    tables = []
    for name, chirality in (("fhp6/left", 1), ("fhp6/right", -1)):
        table = np.arange(64, dtype=np.uint16)
        # Rotation maps head-on classes onto head-on classes, so assigning
        # all six {i, i+3} pairs covers every colliding two-body state.
        for i in range(6):
            pair = (1 << i) | (1 << ((i + 3) % 6))
            table[pair] = _rotate_moving(pair, chirality)
        table[_TRIAD_A] = _TRIAD_B
        table[_TRIAD_B] = _TRIAD_A
        tables.append(
            CollisionTable(name=name, table=table, velocities=FHP_VELOCITIES)
        )
    return tables[0], tables[1]


def fhp7_collision_tables() -> tuple[CollisionTable, CollisionTable]:
    """The two fixed-chirality FHP-II tables (rest particle at bit 6)."""
    tables = []
    for name, chirality in (("fhp7/left", 1), ("fhp7/right", -1)):
        table = np.arange(128, dtype=np.uint16)
        for rest in (0, _REST_BIT):
            # Head-on pairs, rest particle (if any) is a spectator.
            for i in range(3):
                pair = (1 << i) | (1 << (i + 3))
                table[pair | rest] = _rotate_moving(pair, chirality) | rest
            # Symmetric three-body, rest spectator.
            table[_TRIAD_A | rest] = _TRIAD_B | rest
            table[_TRIAD_B | rest] = _TRIAD_A | rest
        # Rest-particle creation/annihilation: {rest, i} <-> {i-1, i+1}.
        for i in range(6):
            mover = (1 << i) | _REST_BIT
            split = (1 << ((i - 1) % 6)) | (1 << ((i + 1) % 6))
            table[mover] = split
            table[split] = mover
        tables.append(
            CollisionTable(name=name, table=table, velocities=FHP7_VELOCITIES)
        )
    return tables[0], tables[1]


def fhp_saturated_tables() -> tuple[CollisionTable, CollisionTable]:
    """Collision-saturated 7-bit tables in the spirit of FHP-III.

    FHP-III maximizes the collision rate by letting *every* state that
    shares its (mass, momentum) invariants with another state scatter.
    We realize that deterministically: states are grouped into
    equivalence classes by exact (particle count, momentum vector); each
    class of size > 1 is permuted by one cyclic step of its canonical
    ordering (``left``) or the inverse step (``right``).  Both tables
    are permutations of the state space, conserve mass and momentum
    exactly (by construction — and re-verified at table construction),
    and leave *no* collision on the table: every state that can legally
    change, does.

    The resulting gas has a strictly higher collision rate — and
    therefore lower viscosity and higher achievable Reynolds number per
    site — than FHP-I/II, which is exactly why Frisch et al. introduced
    the saturated variant.  The specific in-class pairing differs from
    the historical FHP-III listing (any in-class permutation shares the
    conservation laws); benchmarks quote collision rates, not the exact
    microdynamics.
    """
    momenta = np.zeros((128, 2), dtype=np.float64)
    masses = np.zeros(128, dtype=np.int64)
    for state in range(128):
        for ch in range(6):
            if (state >> ch) & 1:
                momenta[state] += FHP_DIRECTIONS[ch]
                masses[state] += 1
        if state & _REST_BIT:
            masses[state] += 1
    # group states by (mass, rounded momentum)
    classes: dict[tuple[int, int, int], list[int]] = {}
    for state in range(128):
        key = (
            int(masses[state]),
            int(round(momenta[state, 0] * 2)),  # momenta are multiples of 1/2
            int(round(momenta[state, 1] / (math.sqrt(3) / 2))),
        )
        classes.setdefault(key, []).append(state)
    left = np.arange(128, dtype=np.uint16)
    right = np.arange(128, dtype=np.uint16)
    for members in classes.values():
        if len(members) < 2:
            continue
        for i, state in enumerate(members):
            left[state] = members[(i + 1) % len(members)]
            right[state] = members[(i - 1) % len(members)]
    return (
        CollisionTable(name="fhp-sat/left", table=left, velocities=FHP7_VELOCITIES),
        CollisionTable(name="fhp-sat/right", table=right, velocities=FHP7_VELOCITIES),
    )


@dataclass
class FHPModel:
    """Collision + propagation kernels for the FHP gas.

    Parameters
    ----------
    rows, cols:
        Storage-grid shape.  ``rows`` must be even when ``boundary`` is
        periodic (the hexagonal row-offset pattern must tile the torus).
    rest_particles:
        Use the 7-bit FHP-II variant instead of the 6-bit FHP-I.
    boundary:
        ``"periodic"``, ``"null"``, or ``"reflecting"`` (bounce-back).
    chirality:
        ``"alternate"`` — deterministic checkerboard-in-time chirality
        (what a deterministic VLSI engine does, and what the equivalence
        tests against the engine simulators rely on); ``"random"`` —
        per-site i.i.d. chirality from the driver's RNG; ``"left"`` /
        ``"right"`` — fixed.
    """

    rows: int
    cols: int
    rest_particles: bool = False
    boundary: str = "periodic"
    chirality: str = "alternate"
    saturated: bool = False

    def __post_init__(self) -> None:
        self.rows = check_positive(self.rows, "rows", integer=True)
        self.cols = check_positive(self.cols, "cols", integer=True)
        if self.boundary not in ("periodic", "null", "reflecting"):
            raise ValueError(
                f"boundary={self.boundary!r} must be periodic, null, or reflecting"
            )
        if self.boundary == "periodic" and self.rows % 2:
            raise ValueError(
                "periodic FHP lattices need an even number of rows "
                "(the half-cell row offset must tile the torus)"
            )
        if self.chirality not in ("alternate", "random", "left", "right"):
            raise ValueError(
                f"chirality={self.chirality!r} must be alternate, random, left, or right"
            )
        if self.saturated:
            if not self.rest_particles:
                raise ValueError(
                    "the collision-saturated table is 7-bit; set rest_particles=True"
                )
            self._left, self._right = fhp_saturated_tables()
        elif self.rest_particles:
            self._left, self._right = fhp7_collision_tables()
        else:
            self._left, self._right = fhp6_collision_tables()
        self._build_propagation_maps()

    # -- public metadata ----------------------------------------------------

    @property
    def num_channels(self) -> int:
        return 7 if self.rest_particles else 6

    @property
    def bits_per_site(self) -> int:
        """Site state width D (the paper budgets D=8 for FHP + flags)."""
        return self.num_channels

    @property
    def velocities(self) -> np.ndarray:
        return (FHP7_VELOCITIES if self.rest_particles else FHP_VELOCITIES).copy()

    @property
    def collision_tables(self) -> tuple[CollisionTable, CollisionTable]:
        return self._left, self._right

    def check_state(self, state: np.ndarray) -> np.ndarray:
        state = np.asarray(state)
        if state.shape != (self.rows, self.cols):
            raise ValueError(
                f"state shape {state.shape} != grid shape {(self.rows, self.cols)}"
            )
        limit = 1 << self.num_channels
        if state.max(initial=0) >= limit:
            raise ValueError(f"FHP states must fit in {self.num_channels} bits")
        return state.astype(np.uint8, copy=False)

    # -- chirality ----------------------------------------------------------

    def chirality_field(
        self, t: int, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Boolean field: True where the *left* table applies at time ``t``."""
        if self.chirality == "left":
            return np.ones((self.rows, self.cols), dtype=bool)
        if self.chirality == "right":
            return np.zeros((self.rows, self.cols), dtype=bool)
        if self.chirality == "random":
            if rng is None:
                raise ValueError("chirality='random' requires an rng")
            return rng.integers(0, 2, size=(self.rows, self.cols)).astype(bool)
        # "alternate": site-checkerboard XOR time parity.  Deterministic,
        # zero storage in hardware (one XOR of coordinate/time parities),
        # and unbiased over any two consecutive steps.
        r = np.arange(self.rows)[:, None]
        c = np.arange(self.cols)[None, :]
        return ((r + c + t) % 2).astype(bool)

    # -- dynamics -----------------------------------------------------------

    def _chirality_mask(
        self, t: int, rng: np.random.Generator | None
    ) -> np.ndarray:
        """Like :meth:`chirality_field`, but cached for the deterministic
        policies so steady-state stepping does not allocate.  Callers must
        not mutate the result."""
        if self.chirality == "random":
            return self.chirality_field(t, rng)
        cache = getattr(self, "_chirality_cache", None)
        if cache is None:
            cache = {}
            self._chirality_cache: dict[int, np.ndarray] = cache
        key = t % 2 if self.chirality == "alternate" else 0
        mask = cache.get(key)
        if mask is None:
            mask = self.chirality_field(t, rng)
            mask.setflags(write=False)
            cache[key] = mask
        return mask

    def collide(
        self,
        state: np.ndarray,
        t: int = 0,
        rng: np.random.Generator | None = None,
        *,
        out: np.ndarray | None = None,
        check: bool = True,
    ) -> np.ndarray:
        """Apply FHP collisions with the configured chirality policy.

        ``out`` (which must not alias ``state``) receives the result
        without allocating; ``check=False`` skips input validation when
        the caller has already validated.
        """
        if check:
            state = self.check_state(state)
        left_mask = self._chirality_mask(t, rng)
        out_left = self._left(state, out=self._scratch("collide_left", state.dtype))
        out_right = self._right(state, out=self._scratch("collide_right", state.dtype))
        if out is None:
            out = np.empty_like(state)
        np.copyto(out, out_right)
        np.copyto(out, out_left, where=left_mask)
        return out

    def propagate(
        self,
        state: np.ndarray,
        *,
        out: np.ndarray | None = None,
        check: bool = True,
    ) -> np.ndarray:
        """Move every particle along its velocity on the hexagonal grid.

        ``out`` (not aliasing ``state``) receives the packed result;
        channel-plane scratch is reused across calls.
        """
        if check:
            state = self.check_state(state)
        nmov = 6
        channels = unpack_channels(
            state, self.num_channels, out=self._scratch("ch_in", np.uint8)
        )
        planes = self._scratch("ch_out", np.uint8)
        if self.rest_particles:
            np.copyto(planes[6], channels[6])  # rest particles stay put
        for ch in range(nmov):
            np.take(
                channels[ch].ravel(), self._src_flat_1d[ch], out=planes[ch].ravel()
            )
            if self.boundary != "periodic":
                planes[ch] &= self._dst_valid[ch]
        if self.boundary == "reflecting":
            bounced = self._scratch("bounced", np.uint8)[0]
            for ch in range(nmov):
                opposite = (ch + 3) % 6
                np.bitwise_and(channels[ch], self._tgt_invalid[ch], out=bounced)
                planes[opposite] |= bounced
        if out is None:
            out = np.zeros_like(state)
        return pack_channels(planes, out=out, check=False)

    def step(
        self,
        state: np.ndarray,
        t: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """One generation: collide (at time ``t``), then propagate
        (validates input once, not per sub-kernel)."""
        state = self.check_state(state)
        return self.propagate(self.collide(state, t, rng, check=False), check=False)

    def _scratch(self, key: str, dtype: np.dtype | type) -> np.ndarray:
        """Lazily allocated per-model scratch buffers (keyed by use)."""
        buffers = getattr(self, "_scratch_buffers", None)
        if buffers is None:
            buffers = {}
            self._scratch_buffers: dict[tuple[str, np.dtype], np.ndarray] = buffers
        dt = np.dtype(dtype)
        buf = buffers.get((key, dt))
        if buf is None:
            if key in ("ch_in", "ch_out"):
                shape: tuple[int, ...] = (self.num_channels, self.rows, self.cols)
            elif key == "bounced":
                shape = (1, self.rows, self.cols)
            else:
                shape = (self.rows, self.cols)
            buf = np.empty(shape, dtype=dt)
            buffers[(key, dt)] = buf
        return buf

    # -- propagation index maps ----------------------------------------------

    def _build_propagation_maps(self) -> None:
        """Precompute flat gather indices per channel.

        For destination site ``(r, c)`` of channel ``ch`` the source is
        ``(r - dr, c - dc(parity of source row))``.  Periodic boundaries
        wrap; otherwise invalid destinations are masked by
        ``_dst_valid``.  ``_tgt_invalid`` marks *source* sites whose
        forward target leaves the grid (used for bounce-back).
        """
        rows, cols = self.rows, self.cols
        r_dst = np.arange(rows)[:, None] * np.ones(cols, dtype=np.int64)[None, :]
        c_dst = np.ones(rows, dtype=np.int64)[:, None] * np.arange(cols)[None, :]
        r_dst = r_dst.astype(np.int64)
        c_dst = c_dst.astype(np.int64)

        self._src_flat: list[np.ndarray] = []
        self._dst_valid: list[np.ndarray] = []
        self._tgt_invalid: list[np.ndarray] = []
        for ch in range(6):
            dr = _ROW_OFFSET[ch]
            r_src = r_dst - dr
            if self.boundary == "periodic":
                r_src_wrapped = r_src % rows
            else:
                r_src_wrapped = np.clip(r_src, 0, rows - 1)
            parity = r_src_wrapped % 2
            dc = np.where(
                parity == 0, _COL_OFFSET_EVEN[ch], _COL_OFFSET_ODD[ch]
            ).astype(np.int64)
            c_src = c_dst - dc
            if self.boundary == "periodic":
                c_src_wrapped = c_src % cols
                valid = np.ones((rows, cols), dtype=np.uint8)
            else:
                valid = (
                    (r_src >= 0) & (r_src < rows) & (c_src >= 0) & (c_src < cols)
                ).astype(np.uint8)
                c_src_wrapped = np.clip(c_src, 0, cols - 1)
            flat = (r_src_wrapped * cols + c_src_wrapped).astype(np.int64)
            self._src_flat.append(flat)
            self._dst_valid.append(valid)

            # Forward targets from the source side, for bounce-back.
            src_parity = np.arange(rows)[:, None] % 2
            fwd_dc = np.where(
                src_parity == 0, _COL_OFFSET_EVEN[ch], _COL_OFFSET_ODD[ch]
            )
            r_tgt = np.arange(rows)[:, None] + dr + np.zeros(cols, dtype=np.int64)
            c_tgt = np.arange(cols)[None, :] + fwd_dc
            invalid = ~((r_tgt >= 0) & (r_tgt < rows) & (c_tgt >= 0) & (c_tgt < cols))
            self._tgt_invalid.append(invalid.astype(np.uint8))
        # Flat gather indices for np.take(..., out=...) in propagate().
        self._src_flat_1d = [f.ravel() for f in self._src_flat]
