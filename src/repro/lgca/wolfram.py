"""One-dimensional binary cellular automata.

Reference [16] of the paper (Steiglitz & Morita, ICASSP 1985) describes a
multi-processor custom chip for exactly this workload: a 1-D CA streamed
through a pipeline of PEs, each advancing the tape one generation.  The
1-D case is the cleanest illustration of the serial-pipeline principle
(section 3) — the delay line is O(1) instead of O(L) — so the engine
examples and several pipeline unit tests use it.

:class:`ElementaryCA` implements Wolfram's 256 radius-1 rules;
:class:`ParityCA` implements arbitrary-radius XOR rules (linear CAs whose
superposition property gives tests a strong oracle).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_in_range, check_nonnegative

__all__ = ["ElementaryCA", "ParityCA"]


@dataclass(frozen=True)
class ElementaryCA:
    """A Wolfram elementary (radius-1, binary) cellular automaton.

    Parameters
    ----------
    rule:
        Wolfram rule number, 0..255.
    boundary:
        ``"periodic"`` or ``"null"`` (cells beyond the edge read 0).
    """

    rule: int
    boundary: str = "periodic"

    def __post_init__(self) -> None:
        check_in_range(self.rule, "rule", 0, 255)
        if int(self.rule) != self.rule:
            raise ValueError(f"rule={self.rule} must be an integer")
        if self.boundary not in ("periodic", "null"):
            raise ValueError(f"boundary={self.boundary!r} must be periodic or null")

    @property
    def radius(self) -> int:
        return 1

    def rule_table(self) -> np.ndarray:
        """(8,) array: next cell value per 3-bit neighborhood (left,self,right)."""
        return ((int(self.rule) >> np.arange(8)) & 1).astype(np.uint8)

    def step(self, tape: np.ndarray) -> np.ndarray:
        """One generation of the whole tape (vectorized)."""
        tape = _check_tape(tape)
        left, right = _shifted(tape, self.boundary)
        idx = (left << 2) | (tape << 1) | right
        return self.rule_table()[idx]

    def run(self, tape: np.ndarray, generations: int) -> np.ndarray:
        """Evolve ``generations`` steps; returns the final tape."""
        generations = check_nonnegative(generations, "generations", integer=True)
        tape = _check_tape(tape).copy()
        for _ in range(generations):
            tape = self.step(tape)
        return tape

    def history(self, tape: np.ndarray, generations: int) -> np.ndarray:
        """Space-time diagram: shape ``(generations + 1, len(tape))``."""
        generations = check_nonnegative(generations, "generations", integer=True)
        tape = _check_tape(tape)
        out = np.empty((generations + 1, tape.size), dtype=np.uint8)
        out[0] = tape
        for t in range(1, generations + 1):
            out[t] = self.step(out[t - 1])
        return out


@dataclass(frozen=True)
class ParityCA:
    """A linear (XOR) CA of arbitrary radius.

    The next cell value is the XOR of the cells at the offsets in
    ``taps``.  Linearity means evolution distributes over XOR of initial
    tapes — a free algebraic oracle for pipeline tests.
    """

    taps: tuple[int, ...] = (-1, 1)
    boundary: str = "periodic"

    def __post_init__(self) -> None:
        if not self.taps:
            raise ValueError("taps must be non-empty")
        if len(set(self.taps)) != len(self.taps):
            raise ValueError(f"taps {self.taps} contain duplicates")
        if self.boundary not in ("periodic", "null"):
            raise ValueError(f"boundary={self.boundary!r} must be periodic or null")
        object.__setattr__(self, "taps", tuple(int(t) for t in self.taps))

    @property
    def radius(self) -> int:
        return max(abs(t) for t in self.taps)

    def step(self, tape: np.ndarray) -> np.ndarray:
        tape = _check_tape(tape)
        out = np.zeros_like(tape)
        for tap in self.taps:
            out ^= _shift_tape(tape, tap, self.boundary)
        return out

    def run(self, tape: np.ndarray, generations: int) -> np.ndarray:
        generations = check_nonnegative(generations, "generations", integer=True)
        tape = _check_tape(tape).copy()
        for _ in range(generations):
            tape = self.step(tape)
        return tape


def _check_tape(tape: np.ndarray) -> np.ndarray:
    tape = np.asarray(tape)
    if tape.ndim != 1:
        raise ValueError("tape must be 1-D")
    if tape.size == 0:
        raise ValueError("tape must be non-empty")
    if np.any((tape != 0) & (tape != 1)):
        raise ValueError("tape cells must be 0 or 1")
    return tape.astype(np.uint8, copy=False)


def _shift_tape(tape: np.ndarray, offset: int, boundary: str) -> np.ndarray:
    """The tape as seen ``offset`` cells away (cell i reads i+offset)."""
    if boundary == "periodic":
        return np.roll(tape, -offset)
    out = np.zeros_like(tape)
    n = tape.size
    if offset >= 0:
        if offset < n:
            out[: n - offset] = tape[offset:]
    else:
        if -offset < n:
            out[-offset:] = tape[: n + offset]
    return out


def _shifted(tape: np.ndarray, boundary: str) -> tuple[np.ndarray, np.ndarray]:
    """(left-neighbor values, right-neighbor values) per cell."""
    return _shift_tape(tape, -1, boundary), _shift_tape(tape, 1, boundary)
