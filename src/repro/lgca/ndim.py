"""d-dimensional orthogonal lattice gases (HPP generalized).

Section 2 of the paper notes "Extensions to three-dimensional gases are
just now being formulated [1]" (d'Humières, Lallemand & Frisch's 3-D
models), and the whole section 7 analysis is parameterized by the
lattice dimension d — the bound is R = O(B·S^{1/d}).  This module
supplies a *runnable* d-dimensional gas so the d > 2 branches of the
reproduction exercise a real workload rather than an abstract graph:

* ``2d`` unit-velocity channels, one pair per axis (channel ``2a`` moves
  +axis a, channel ``2a + 1`` moves −axis a);
* HPP-style head-on collisions: a lone opposite pair on axis *a*
  scatters to a lone opposite pair on another axis, cycling through the
  axes deterministically (conserves mass and momentum exactly, and like
  2-D HPP is chain-reversible);
* propagation by per-channel rolls with periodic, null, or reflecting
  boundaries.

Like 2-D HPP this gas is *not* isotropic — the paper's point that real
3-D models need cleverer lattices (FCHC) stands; what the engine and
pebbling analyses need from the workload is its uniform/local/simple
structure and its dimension, which this provides for any d.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.lgca.bits import pack_channels, unpack_channels
from repro.lgca.collision import CollisionTable
from repro.util.validation import check_positive

__all__ = ["NDHPPModel", "ndhpp_velocities", "ndhpp_collision_table"]


def ndhpp_velocities(d: int) -> np.ndarray:
    """(2d, 2→d) velocity vectors: ±unit vector per axis.

    Returned with ``d`` columns; the 2-column convention used by the
    2-D models is the special case d = 2 (note the axis order: channel
    2a is +axis a).
    """
    d = check_positive(d, "d", integer=True)
    out = np.zeros((2 * d, d), dtype=np.float64)
    for axis in range(d):
        out[2 * axis, axis] = 1.0
        out[2 * axis + 1, axis] = -1.0
    return out


def _axis_pair_mask(axis: int) -> int:
    """State bits of the ± pair on ``axis``."""
    return (1 << (2 * axis)) | (1 << (2 * axis + 1))


def ndhpp_collision_table(d: int) -> CollisionTable:
    """Head-on pair rotation table for the d-dimensional gas.

    A state consisting of *exactly* one opposite pair on axis ``a``
    becomes the opposite pair on axis ``(a + 1) mod d``.  Everything
    else passes through.  Mass is trivially conserved; momentum of an
    opposite pair is zero on every axis, so the swap conserves momentum
    exactly.  For d = 1 the table is the identity (nowhere to scatter).
    """
    d = check_positive(d, "d", integer=True)
    if d > 8:
        raise ValueError(f"d={d} would need a {2*d}-bit state; cap is 16 channels")
    size = 1 << (2 * d)
    table = np.arange(size, dtype=np.uint16)
    if d >= 2:
        for axis in range(d):
            state = _axis_pair_mask(axis)
            table[state] = _axis_pair_mask((axis + 1) % d)
    velocities = ndhpp_velocities(d)
    # CollisionTable verifies 2-component momentum; verify d components
    # here by padding pairs of axes.
    _verify_ndim_conservation(table, velocities)
    # Construct with the first two velocity components (or zero-padded),
    # skipping the built-in check we already superseded.
    vel2 = np.zeros((2 * d, 2), dtype=np.float64)
    vel2[:, : min(2, d)] = velocities[:, : min(2, d)]
    return CollisionTable(
        name=f"ndhpp-{d}d",
        table=table,
        velocities=vel2,
        conserves_momentum=True,
        _skip_verify=True,
    )


def _verify_ndim_conservation(table: np.ndarray, velocities: np.ndarray) -> None:
    """Exhaustive d-component mass/momentum check."""
    num_channels = velocities.shape[0]
    states = np.arange(table.size, dtype=np.uint32)
    occupancy = ((states[:, None] >> np.arange(num_channels)[None, :]) & 1).astype(
        np.float64
    )
    mass_in = occupancy.sum(axis=1)
    mass_out = occupancy[table].sum(axis=1)
    if not np.array_equal(mass_in, mass_out):
        raise AssertionError("ndhpp table violates mass conservation")
    p_in = occupancy @ velocities
    p_out = occupancy[table] @ velocities
    if not np.allclose(p_in, p_out, atol=1e-12):
        raise AssertionError("ndhpp table violates momentum conservation")


@dataclass
class NDHPPModel:
    """Collision + propagation kernels for the d-dimensional gas.

    Parameters
    ----------
    shape:
        Lattice side lengths per dimension.
    boundary:
        ``"periodic"``, ``"null"``, or ``"reflecting"``.
    """

    shape: tuple[int, ...]
    boundary: str = "periodic"

    def __init__(self, shape: Sequence[int], boundary: str = "periodic"):
        shape = tuple(check_positive(s, "shape entry", integer=True) for s in shape)
        if not shape:
            raise ValueError("shape must have at least one dimension")
        if len(shape) > 8:
            raise ValueError("at most 8 dimensions supported (16 channels)")
        if boundary not in ("periodic", "null", "reflecting"):
            raise ValueError(
                f"boundary={boundary!r} must be periodic, null, or reflecting"
            )
        self.shape = shape
        self.boundary = boundary
        self._table = ndhpp_collision_table(len(shape))
        self._velocities_full = ndhpp_velocities(len(shape))

    # -- metadata ---------------------------------------------------------------

    @property
    def d(self) -> int:
        return len(self.shape)

    @property
    def num_channels(self) -> int:
        return 2 * self.d

    @property
    def bits_per_site(self) -> int:
        return self.num_channels

    @property
    def num_sites(self) -> int:
        return int(np.prod(self.shape))

    @property
    def velocities(self) -> np.ndarray:
        """(2d, d) full-dimensional velocity vectors."""
        return self._velocities_full.copy()

    @property
    def collision_table(self) -> CollisionTable:
        return self._table

    def check_state(self, state: np.ndarray) -> np.ndarray:
        state = np.asarray(state)
        if state.shape != self.shape:
            raise ValueError(f"state shape {state.shape} != lattice shape {self.shape}")
        if state.max(initial=0) >= (1 << self.num_channels):
            raise ValueError(f"states must fit in {self.num_channels} bits")
        dtype = np.uint8 if self.num_channels <= 8 else np.uint16
        return state.astype(dtype, copy=False)

    # -- dynamics ----------------------------------------------------------------

    def collide(
        self,
        state: np.ndarray,
        t: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        state = self.check_state(state)
        return self._table(state).astype(state.dtype)

    def propagate(self, state: np.ndarray) -> np.ndarray:
        state = self.check_state(state)
        channels = unpack_channels(state, self.num_channels)
        out = np.zeros_like(channels)
        for ch in range(self.num_channels):
            axis = ch // 2
            step = 1 if ch % 2 == 0 else -1
            out[ch] = self._shift(channels[ch], axis, step)
        if self.boundary == "reflecting":
            for ch in range(self.num_channels):
                axis = ch // 2
                step = 1 if ch % 2 == 0 else -1
                wall = self._wall_slice(axis, step)
                opposite = ch ^ 1
                out[opposite][wall] |= channels[ch][wall]
        return pack_channels(out)

    def step(
        self,
        state: np.ndarray,
        t: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        return self.propagate(self.collide(state, t, rng))

    # -- helpers --------------------------------------------------------------------

    def _shift(self, plane: np.ndarray, axis: int, step: int) -> np.ndarray:
        if self.boundary == "periodic":
            return np.roll(plane, step, axis=axis)
        out = np.zeros_like(plane)
        src = [slice(None)] * self.d
        dst = [slice(None)] * self.d
        if step == 1:
            src[axis] = slice(0, self.shape[axis] - 1)
            dst[axis] = slice(1, self.shape[axis])
        else:
            src[axis] = slice(1, self.shape[axis])
            dst[axis] = slice(0, self.shape[axis] - 1)
        out[tuple(dst)] = plane[tuple(src)]
        return out

    def _wall_slice(self, axis: int, step: int) -> tuple:
        """Index of the wall layer a ±axis mover would exit through."""
        idx = [slice(None)] * self.d
        idx[axis] = self.shape[axis] - 1 if step == 1 else 0
        return tuple(idx)
