"""Multi-spin coded (bit-plane) LGCA kernels: 64 sites per machine word.

The reference kernels store one site per ``uint8`` and look collisions up
in a ``2^C`` table.  Real CA hardware — and the fastest software
implementations — instead store one lattice site per *bit*: the state
field becomes ``C`` *bit-planes* (one per velocity channel), each a
``(rows, ceil(cols/64))`` array of ``uint64`` words holding 64
column-sites apiece.  Collision becomes pure boolean algebra evaluated
64 sites at a time, and propagation becomes word-level shifts with carry
bits exchanged between adjacent words.  This is the multi-spin coding of
the lattice-gas literature and the natural software analogue of the
paper's bit-serial PE arrays.

The collision logic is **derived mechanically** from the verified
:class:`repro.lgca.collision.CollisionTable`: every state ``s`` the table
changes contributes one *flip term* — the minterm recognizing ``s``
ANDed across planes, XOR-ed into every output channel in
``s ^ table[s]``.  Minterms of distinct states are disjoint, so the
compiled expression computes exactly the table; construction re-checks
this by evaluating the compiled logic over all ``2^C`` states
(:func:`verify_plane_logic`).  Any conserving rule set — HPP, the FHP
chirality variants, the collision-saturated tables — compiles this way.

Storage layout: bit ``j`` of word ``w`` of row ``r`` in a plane is lattice
site ``(r, 64*w + j)``.  Bits at column positions ``>= cols`` (the tail
padding of the last word) are kept zero as a module invariant; every
kernel preserves it.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

import numpy as np

from repro.lgca.bits import opposite_channels
from repro.util.hotpath import hot_path
from repro.lgca.collision import CollisionTable
from repro.lgca.fhp import (
    _COL_OFFSET_EVEN,
    _COL_OFFSET_ODD,
    _ROW_OFFSET,
    FHPModel,
)
from repro.lgca.hpp import HPP_OFFSETS, HPPModel

__all__ = [
    "WORD_BITS",
    "num_words",
    "pack_plane",
    "unpack_plane",
    "pack_state",
    "unpack_state",
    "FlipTerm",
    "flip_terms",
    "split_chirality_terms",
    "verify_plane_logic",
    "BitplaneKernel",
]

#: Sites stored per machine word (one lattice site per bit of a uint64).
WORD_BITS = 64

_ONE = np.uint64(1)
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)


def num_words(cols: int) -> int:
    """Words per bit-plane row: ``ceil(cols / 64)``."""
    if cols < 1:
        raise ValueError(f"cols={cols} must be positive")
    return (cols + WORD_BITS - 1) // WORD_BITS


def _tail_mask(cols: int) -> np.uint64:
    """Mask of valid bits in the last word of a row (all-ones iff 64 | cols)."""
    rem = cols % WORD_BITS
    if rem == 0:
        return _FULL
    return np.uint64((1 << rem) - 1)


_LITTLE_ENDIAN = sys.byteorder == "little"


def _bytes_to_words(buf: np.ndarray) -> np.ndarray:
    """Reinterpret ``(..., W*8)`` little-endian bytes as ``(..., W)`` uint64.

    On little-endian hosts (the overwhelmingly common case) this is a
    free ``view``; elsewhere the words are assembled with explicit byte
    shifts so the bit layout is identical on every platform.
    """
    if _LITTLE_ENDIAN:
        return buf.view(np.uint64)
    grouped = buf.reshape(buf.shape[:-1] + (buf.shape[-1] // 8, 8))
    words = np.zeros(grouped.shape[:-1], dtype=np.uint64)
    for i in range(8):
        words |= grouped[..., i].astype(np.uint64) << np.uint64(8 * i)
    return words


def _words_to_bytes(words: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_bytes_to_words` (words must be C-contiguous)."""
    if _LITTLE_ENDIAN:
        return words.view(np.uint8)
    buf = np.empty(words.shape[:-1] + (words.shape[-1] * 8,), dtype=np.uint8)
    grouped = buf.reshape(words.shape + (8,))
    for i in range(8):
        np.right_shift(words, np.uint64(8 * i), out=grouped[..., i], casting="unsafe")
    return buf


def pack_plane(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 plane of shape ``(rows, cols)`` into ``(rows, W)`` uint64.

    Bit ``j`` of word ``w`` is column ``64*w + j``; tail padding is zero.
    The layout is little-endian within the word on every platform.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError("plane must be 2-D")
    rows, cols = bits.shape
    w = num_words(cols)
    packed = np.packbits(bits.astype(np.uint8, copy=False), axis=1, bitorder="little")
    buf = np.zeros((rows, w * 8), dtype=np.uint8)
    buf[:, : packed.shape[1]] = packed
    return _bytes_to_words(buf)


def unpack_plane(words: np.ndarray, cols: int) -> np.ndarray:
    """Inverse of :func:`pack_plane`: ``(rows, W)`` words to 0/1 uint8."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    rows, w = words.shape
    if num_words(cols) != w:
        raise ValueError(f"{w} words cannot hold {cols} columns")
    bits = np.unpackbits(_words_to_bytes(words), axis=1, bitorder="little")
    return bits[:, :cols]


#: One set bit per byte lane of a uint64 — the {0,1}-byte SIMD mask.
_LANES = np.uint64(0x0101010101010101)


def _split_channels(state: np.ndarray, bits: np.ndarray) -> None:
    """Extract channel bit ``ch`` of every site byte into ``bits[ch]``.

    ``state`` is a C-contiguous uint8 field, ``bits`` is ``(C, n)``
    uint8.  Bulk work happens on uint64 views — each 64-bit lane holds 8
    site bytes, and because every extracted byte is in {0, 1}, shifts by
    ``ch < 8`` never carry across byte lanes (endian-independent).
    """
    num_channels = bits.shape[0]
    flat = state.reshape(-1)
    n = flat.size
    n8 = n - n % 8
    for ch in range(num_channels):
        if n8:
            d64 = bits[ch, :n8].view(np.uint64)
            np.right_shift(flat[:n8].view(np.uint64), np.uint64(ch), out=d64)
            d64 &= _LANES
        if n8 < n:
            np.right_shift(flat[n8:], np.uint8(ch), out=bits[ch, n8:])
            bits[ch, n8:] &= np.uint8(1)


def _join_channels(bits: np.ndarray, out: np.ndarray) -> None:
    """Inverse of :func:`_split_channels`; consumes (mutates) ``bits``."""
    num_channels = bits.shape[0]
    flat = out.reshape(-1)
    flat[...] = 0
    n = flat.size
    n8 = n - n % 8
    for ch in range(num_channels):
        if n8:
            b64 = bits[ch, :n8].view(np.uint64)
            np.left_shift(b64, np.uint64(ch), out=b64)
            flat[:n8].view(np.uint64)[...] |= b64
        if n8 < n:
            np.left_shift(bits[ch, n8:], np.uint8(ch), out=bits[ch, n8:])
            flat[n8:] |= bits[ch, n8:]


def pack_state(state: np.ndarray, num_channels: int) -> np.ndarray:
    """Pack an integer site-state field into ``(C, rows, W)`` bit-planes."""
    state = np.asarray(state)
    if state.ndim != 2:
        raise ValueError("state must be 2-D")
    rows, cols = state.shape
    w = num_words(cols)
    if num_channels <= 8:
        # Fast path: byte-lane channel split, then one packbits pass.
        state8 = np.ascontiguousarray(state, dtype=np.uint8)
        bits = np.empty((num_channels, rows * cols), dtype=np.uint8)
        _split_channels(state8, bits)
        packed = np.packbits(
            bits.reshape(num_channels, rows, cols), axis=2, bitorder="little"
        )
        if packed.shape[2] == w * 8:  # word-aligned: no padding copy needed
            return _bytes_to_words(packed)
        buf = np.zeros((num_channels, rows, w * 8), dtype=np.uint8)
        buf[:, :, : packed.shape[2]] = packed
        return _bytes_to_words(buf)
    planes = np.zeros((num_channels, rows, w), dtype=np.uint64)
    chbits = np.empty((rows, cols), dtype=np.uint8)
    for ch in range(num_channels):
        np.right_shift(state, ch, out=chbits, casting="unsafe")
        chbits &= np.uint8(1)
        planes[ch] = pack_plane(chbits)
    return planes


def unpack_state(
    planes: np.ndarray, cols: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Inverse of :func:`pack_state`: bit-planes to a packed site field.

    Returns dtype uint8 for <= 8 channels, uint16 otherwise.
    """
    planes = np.ascontiguousarray(planes, dtype=np.uint64)
    num_channels, rows, w = planes.shape
    dtype: type = np.uint8 if num_channels <= 8 else np.uint16
    if out is None:
        out = np.empty((rows, cols), dtype=dtype)
    else:
        if out.shape != (rows, cols):
            raise ValueError(f"out has shape {out.shape}, expected {(rows, cols)}")
        dtype = out.dtype.type
    # count=cols keeps the unpacked planes contiguous (tail bits dropped).
    bits = np.unpackbits(
        _words_to_bytes(planes).reshape(num_channels, rows, w * 8),
        axis=2,
        bitorder="little",
        count=cols,
    )
    if dtype == np.uint8:
        _join_channels(bits.reshape(num_channels, rows * cols), out)
        return out
    out[...] = 0
    for ch in range(num_channels):
        out |= bits[ch].astype(dtype) << dtype(ch)
    return out


# -- compiled collision logic -------------------------------------------------


@dataclass(frozen=True)
class FlipTerm:
    """One changing table entry as plane logic.

    The minterm of ``state`` (AND of ``pos`` planes and ``neg``
    complements) is XOR-ed into every channel in ``flip_channels``.
    ``pos`` is never empty: mass conservation forces ``table[0] == 0``,
    so every changing state holds at least one particle — which also
    guarantees the minterm never sets tail-padding bits.
    """

    state: int
    flips: int
    pos: tuple[int, ...]
    neg: tuple[int, ...]
    flip_channels: tuple[int, ...]


def _make_term(state: int, out_state: int, num_channels: int) -> FlipTerm:
    flips = state ^ out_state
    pos = tuple(ch for ch in range(num_channels) if (state >> ch) & 1)
    neg = tuple(ch for ch in range(num_channels) if not (state >> ch) & 1)
    if not pos:
        raise ValueError("state 0 cannot change under a mass-conserving table")
    return FlipTerm(
        state=state,
        flips=flips,
        pos=pos,
        neg=neg,
        flip_channels=tuple(ch for ch in range(num_channels) if (flips >> ch) & 1),
    )


def flip_terms(table: CollisionTable) -> tuple[FlipTerm, ...]:
    """Compile a collision table to its flip terms (changing states only)."""
    num_channels = table.num_channels
    return tuple(
        _make_term(s, int(table.table[s]), num_channels)
        for s in range(table.num_states)
        if int(table.table[s]) != s
    )


def split_chirality_terms(
    left: CollisionTable, right: CollisionTable
) -> tuple[tuple[FlipTerm, ...], tuple[FlipTerm, ...], tuple[FlipTerm, ...]]:
    """Factor a chirality pair into (common, left-only, right-only) terms.

    States both tables move identically (e.g. the three-body triads) are
    evaluated once instead of once per chirality.
    """
    if left.num_channels != right.num_channels:
        raise ValueError("chirality tables must share a channel set")
    num_channels = left.num_channels
    common: list[FlipTerm] = []
    only_left: list[FlipTerm] = []
    only_right: list[FlipTerm] = []
    for s in range(left.num_states):
        out_l = int(left.table[s])
        out_r = int(right.table[s])
        if out_l == s and out_r == s:
            continue
        if out_l == out_r:
            common.append(_make_term(s, out_l, num_channels))
            continue
        if out_l != s:
            only_left.append(_make_term(s, out_l, num_channels))
        if out_r != s:
            only_right.append(_make_term(s, out_r, num_channels))
    return tuple(common), tuple(only_left), tuple(only_right)


def _accumulate_flips(
    terms: tuple[FlipTerm, ...],
    planes: np.ndarray,
    comps: np.ndarray,
    acc: np.ndarray,
    scratch: np.ndarray,
) -> None:
    """OR every term's minterm into the flip planes of its channels.

    ``planes``/``comps``/``acc`` are ``(C, rows, W)``; ``scratch`` is one
    ``(rows, W)`` plane.  The first factor is always a positive literal,
    which keeps tail padding clear throughout.
    """
    for term in terms:
        np.copyto(scratch, planes[term.pos[0]])
        for ch in term.pos[1:]:
            scratch &= planes[ch]
        for ch in term.neg:
            scratch &= comps[ch]
        for ch in term.flip_channels:
            acc[ch] |= scratch


def verify_plane_logic(table: CollisionTable, terms: tuple[FlipTerm, ...]) -> None:
    """Check compiled flip terms against the table over **all** states.

    Runs the exact vectorized accumulation the kernel uses on a one-row
    field enumerating every state, and compares the XOR-reconstructed
    outputs entry by entry.  Raises ``ValueError`` on any divergence, so
    a kernel holding compiled terms is as trustworthy as the verified
    table it came from.
    """
    num_channels = table.num_channels
    n = table.num_states
    states = np.arange(n, dtype=np.uint16).reshape(1, n)
    planes = pack_state(states, num_channels)
    comps = np.bitwise_not(planes)
    flips = np.zeros_like(planes)
    scratch = np.empty_like(planes[0])
    _accumulate_flips(terms, planes, comps, flips, scratch)
    out = unpack_state(np.bitwise_xor(planes, flips), n)
    expected = table.table[states].astype(out.dtype)
    if not np.array_equal(out, expected):
        bad = int(np.nonzero(out != expected)[1][0])
        raise ValueError(
            f"plane-compiled logic diverges from table {table.name!r} at state "
            f"{bad:#x}: {int(out[0, bad]):#x} != {int(expected[0, bad]):#x}"
        )


# -- word-level shifts --------------------------------------------------------


def _shift_cols_into(
    src: np.ndarray,
    dst: np.ndarray,
    dc: int,
    cols: int,
    periodic: bool,
    carry: np.ndarray,
) -> None:
    """Shift plane columns by ``dc`` (|dc| <= 1) into ``dst`` (no aliasing).

    Word-level shift with carry bits exchanged between adjacent words;
    ``carry`` is a scratch array of the same shape.  Non-periodic shifts
    zero-fill (null semantics); tail padding stays clear.
    """
    if dc == 0:
        np.copyto(dst, src)
        return
    last = np.uint64((cols - 1) % WORD_BITS)
    if dc == 1:
        np.left_shift(src, _ONE, out=dst)
        np.right_shift(src, np.uint64(WORD_BITS - 1), out=carry)
        dst[:, 1:] |= carry[:, :-1]
        if periodic:
            np.right_shift(src[:, -1], last, out=carry[:, 0])
            carry[:, 0] &= _ONE
            dst[:, 0] |= carry[:, 0]
        dst[:, -1] &= _tail_mask(cols)
    elif dc == -1:
        np.right_shift(src, _ONE, out=dst)
        np.left_shift(src, np.uint64(WORD_BITS - 1), out=carry)
        dst[:, :-1] |= carry[:, 1:]
        if periodic:
            np.bitwise_and(src[:, 0], _ONE, out=carry[:, 0])
            np.left_shift(carry[:, 0], last, out=carry[:, 0])
            dst[:, -1] |= carry[:, 0]
    else:
        raise ValueError(f"column shift dc={dc} not in {{-1, 0, 1}}")


def _shift_rows_into(
    src: np.ndarray, dst: np.ndarray, dr: int, periodic: bool
) -> None:
    """Shift plane rows by ``dr`` (|dr| <= 1) into ``dst`` (no aliasing)."""
    if dr == 0:
        np.copyto(dst, src)
    elif dr == 1:
        dst[1:] = src[:-1]
        if periodic:
            dst[0] = src[-1]
        else:
            dst[0] = 0
    elif dr == -1:
        dst[:-1] = src[1:]
        if periodic:
            dst[-1] = src[0]
        else:
            dst[-1] = 0
    else:
        raise ValueError(f"row shift dr={dr} not in {{-1, 0, 1}}")


# -- the kernel ---------------------------------------------------------------


class BitplaneKernel:
    """Bit-plane collide/propagate kernels compiled from a reference model.

    Wraps an :class:`repro.lgca.hpp.HPPModel` or
    :class:`repro.lgca.fhp.FHPModel` (reusing its *verified* collision
    tables, boundary setting, and chirality policy) and evolves states
    held as ``(C, rows, W)`` uint64 bit-planes.  All working storage is
    preallocated at construction, so :meth:`step_into` performs no array
    allocation in steady state.

    Parameters
    ----------
    model:
        The reference model to compile.
    obstacles:
        Optional solid-site mask (an ``ObstacleMap`` or boolean array);
        solid sites bounce back exactly like the reference automaton.
    """

    def __init__(self, model: HPPModel | FHPModel, obstacles: object = None):
        if not isinstance(model, (HPPModel, FHPModel)):
            raise TypeError(
                f"no bit-plane kernel for model type {type(model).__name__}"
            )
        self.model = model
        self.rows = model.rows
        self.cols = model.cols
        self.words = num_words(model.cols)
        self.num_channels = model.num_channels
        self.boundary = model.boundary
        rows, w = self.rows, self.words
        shape = (rows, w)

        # -- collision terms, mechanically compiled and cross-checked ---------
        self._chirality: str | None = None
        if isinstance(model, FHPModel):
            left, right = model.collision_tables
            if model.chirality == "left":
                self._common = flip_terms(left)
                self._left_terms: tuple[FlipTerm, ...] = ()
                self._right_terms: tuple[FlipTerm, ...] = ()
                verify_plane_logic(left, self._common)
            elif model.chirality == "right":
                self._common = flip_terms(right)
                self._left_terms = ()
                self._right_terms = ()
                verify_plane_logic(right, self._common)
            else:
                self._chirality = model.chirality
                self._common, self._left_terms, self._right_terms = (
                    split_chirality_terms(left, right)
                )
                verify_plane_logic(left, self._common + self._left_terms)
                verify_plane_logic(right, self._common + self._right_terms)
            self._kind = "fhp"
        else:
            self._common = flip_terms(model.collision_table)
            self._left_terms = ()
            self._right_terms = ()
            verify_plane_logic(model.collision_table, self._common)
            self._kind = "hpp"

        # -- masks -------------------------------------------------------------
        if self._chirality == "alternate":
            even = model.chirality_field(0)
            odd = model.chirality_field(1)
            self._alt_masks = (
                (pack_plane(even), pack_plane(~even)),
                (pack_plane(odd), pack_plane(~odd)),
            )
        mask = getattr(obstacles, "mask", obstacles)
        if mask is not None and np.any(mask):
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (rows, self.cols):
                raise ValueError(
                    f"obstacle shape {mask.shape} != grid shape {(rows, self.cols)}"
                )
            self._solid: np.ndarray | None = pack_plane(mask)
            self._not_solid = pack_plane(~mask)
            self._opposite = opposite_channels(self.num_channels)
        else:
            self._solid = None
        if self._kind == "fhp" and self.boundary == "reflecting":
            self._tgt_invalid = [pack_plane(m) for m in model._tgt_invalid]
        if self._kind == "hpp":
            first_col = np.zeros((rows, self.cols), dtype=np.uint8)
            first_col[:, 0] = 1
            last_col = np.zeros((rows, self.cols), dtype=np.uint8)
            last_col[:, -1] = 1
            self._first_col = pack_plane(first_col)
            self._last_col = pack_plane(last_col)

        # -- preallocated working storage -------------------------------------
        num_channels = self.num_channels
        self._comps = np.empty((num_channels, rows, w), dtype=np.uint64)
        self._flips = np.empty((num_channels, rows, w), dtype=np.uint64)
        self._scratch = np.empty(shape, dtype=np.uint64)
        self._carry = np.empty(shape, dtype=np.uint64)
        self._stage = np.empty(shape, dtype=np.uint64)
        self._mid = np.empty((num_channels, rows, w), dtype=np.uint64)
        if self._left_terms or self._right_terms:
            self._side = np.empty((num_channels, rows, w), dtype=np.uint64)
        if self._chirality == "random":
            self._rand_m = np.empty(shape, dtype=np.uint64)
            self._rand_not_m = np.empty(shape, dtype=np.uint64)
        self._ext_chirality: tuple[np.ndarray, np.ndarray] | None = None

    # -- plane <-> field conversion -------------------------------------------

    def alloc_planes(self) -> np.ndarray:
        """A zeroed ``(C, rows, W)`` plane buffer for this lattice."""
        return np.zeros(
            (self.num_channels, self.rows, self.words), dtype=np.uint64
        )

    def pack(self, state: np.ndarray) -> np.ndarray:
        """Pack a site-state field into fresh bit-planes."""
        return pack_state(state, self.num_channels)

    def unpack(self, planes: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Unpack bit-planes back into a uint8 site-state field."""
        return unpack_state(planes, self.cols, out=out)

    # -- collision -------------------------------------------------------------

    def set_external_chirality(
        self, masks: tuple[np.ndarray, np.ndarray] | None
    ) -> None:
        """Override the chirality source with pre-packed mask planes.

        ``masks`` is a ``(left, right)`` pair of ``(rows, W)`` uint64
        planes (or ``None`` to restore the model's own field).  The
        kernel keeps *references*: the caller may rewrite the arrays in
        place between generations.  The parallel backend uses this to
        distribute a globally drawn ``random`` chirality field to
        slab-local kernels, preserving the whole-lattice RNG stream —
        something per-slab draws could never reproduce.
        """
        if masks is not None:
            shape = (self.rows, self.words)
            for plane in masks:
                if plane.shape != shape or plane.dtype != np.uint64:
                    raise ValueError(
                        f"chirality mask must be a uint64 plane of shape "
                        f"{shape}; got {plane.dtype} {plane.shape}"
                    )
            masks = (masks[0], masks[1])
        self._ext_chirality = masks

    def _chirality_planes(
        self, t: int, rng: np.random.Generator | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Packed (left-mask, right-mask) planes for generation ``t``."""
        if self._ext_chirality is not None:
            return self._ext_chirality
        if self._chirality == "alternate":
            return self._alt_masks[t % 2]
        assert self._chirality == "random"
        field = self.model.chirality_field(t, rng)  # type: ignore[union-attr]
        # Random chirality needs a fresh packed mask each generation;
        # this is inherent to the model, not a fixable leak.
        self._rand_m[...] = pack_plane(field)  # repro: alloc-ok
        self._rand_not_m[...] = pack_plane(~field)  # repro: alloc-ok
        return self._rand_m, self._rand_not_m

    @hot_path
    def collide_into(
        self,
        planes_in: np.ndarray,
        planes_out: np.ndarray,
        t: int = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        """Boolean-algebra collision: ``out = in XOR flips(in)``.

        Solid (obstacle) sites bounce back instead, exactly like the
        reference automaton.  ``planes_out`` must not alias ``planes_in``.
        """
        comps, flips = self._comps, self._flips
        num_channels = self.num_channels
        for ch in range(num_channels):
            np.bitwise_not(planes_in[ch], out=comps[ch])
        flips[...] = 0
        _accumulate_flips(self._common, planes_in, comps, flips, self._scratch)
        if self._left_terms or self._right_terms:
            left_mask, right_mask = self._chirality_planes(t, rng)
            side = self._side
            side[...] = 0
            _accumulate_flips(self._left_terms, planes_in, comps, side, self._scratch)
            for ch in range(num_channels):
                side[ch] &= left_mask
                flips[ch] |= side[ch]
            side[...] = 0
            _accumulate_flips(self._right_terms, planes_in, comps, side, self._scratch)
            for ch in range(num_channels):
                side[ch] &= right_mask
                flips[ch] |= side[ch]
        for ch in range(num_channels):
            np.bitwise_xor(planes_in[ch], flips[ch], out=planes_out[ch])
        if self._solid is not None:
            scratch = self._scratch
            for ch in range(num_channels):
                planes_out[ch] &= self._not_solid
                np.bitwise_and(planes_in[self._opposite[ch]], self._solid, out=scratch)
                planes_out[ch] |= scratch

    # -- propagation -----------------------------------------------------------

    @hot_path
    def propagate_into(self, planes_in: np.ndarray, planes_out: np.ndarray) -> None:
        """Word-shift propagation under the model's boundary condition.

        ``planes_out`` must not alias ``planes_in``.
        """
        if self._kind == "hpp":
            self._propagate_hpp(planes_in, planes_out)
        else:
            self._propagate_fhp(planes_in, planes_out)

    def _propagate_hpp(self, planes_in: np.ndarray, planes_out: np.ndarray) -> None:
        periodic = self.boundary == "periodic"
        for ch, (dr, dc) in enumerate(HPP_OFFSETS):
            if dc != 0:
                _shift_cols_into(
                    planes_in[ch], planes_out[ch], dc, self.cols, periodic, self._carry
                )
            else:
                _shift_rows_into(planes_in[ch], planes_out[ch], dr, periodic)
        if self.boundary == "reflecting":
            scratch = self._scratch
            # +x at the right wall returns as -x (and so on around).
            np.bitwise_and(planes_in[0], self._last_col, out=scratch)
            planes_out[2] |= scratch
            np.bitwise_and(planes_in[2], self._first_col, out=scratch)
            planes_out[0] |= scratch
            planes_out[3][0, :] |= planes_in[1][0, :]
            planes_out[1][-1, :] |= planes_in[3][-1, :]

    def _propagate_fhp(self, planes_in: np.ndarray, planes_out: np.ndarray) -> None:
        periodic = self.boundary == "periodic"
        stage, carry = self._stage, self._carry
        for ch in range(6):
            dr = _ROW_OFFSET[ch]
            dc_even = _COL_OFFSET_EVEN[ch]
            dc_odd = _COL_OFFSET_ODD[ch]
            src = planes_in[ch]
            if dc_even == dc_odd:
                _shift_cols_into(src, stage, dc_even, self.cols, periodic, carry)
            else:
                # Column offset depends on the *source* row's parity, so
                # shift the even/odd row interleaves separately (the
                # shifts are row-local) before moving rows.
                _shift_cols_into(
                    src[0::2], stage[0::2], dc_even, self.cols, periodic, carry[0::2]
                )
                _shift_cols_into(
                    src[1::2], stage[1::2], dc_odd, self.cols, periodic, carry[1::2]
                )
            _shift_rows_into(stage, planes_out[ch], dr, periodic)
        if self.num_channels == 7:
            np.copyto(planes_out[6], planes_in[6])
        if self.boundary == "reflecting":
            scratch = self._scratch
            for ch in range(6):
                np.bitwise_and(planes_in[ch], self._tgt_invalid[ch], out=scratch)
                planes_out[(ch + 3) % 6] |= scratch

    # -- full generation -------------------------------------------------------

    @hot_path
    def step_into(
        self,
        planes_in: np.ndarray,
        planes_out: np.ndarray,
        t: int = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        """One generation (collide then propagate), allocation-free.

        ``planes_out`` must not alias ``planes_in``; the collided
        intermediate lives in a preallocated internal buffer.
        """
        self.collide_into(planes_in, self._mid, t, rng)
        self.propagate_into(self._mid, planes_out)
