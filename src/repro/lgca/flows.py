"""Initial conditions and obstacle geometries for lattice-gas experiments.

These generate the flows the paper's introduction motivates (fluid
dynamics test problems): uniform equilibrium gases, shear layers, channel
(Poiseuille-type) inflow, localized density pulses (for the isotropy
demonstration of benchmark E12), and solid bodies (cylinder, flat plate)
for wake studies.

All generators are seeded-RNG deterministic: the same ``rng`` state gives
the same gas, which the engine-equivalence tests rely on.
"""

from __future__ import annotations

import numpy as np

from repro.lgca.automaton import ObstacleMap
from repro.util.validation import check_positive, check_probability

__all__ = [
    "uniform_random_state",
    "shear_flow_state",
    "channel_flow_state",
    "density_pulse_state",
    "directed_beam_state",
    "cylinder_obstacle",
    "plate_obstacle",
]


def uniform_random_state(
    rows: int,
    cols: int,
    num_channels: int,
    density: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Equilibrium gas: each channel occupied i.i.d. with ``density``.

    ``density`` is the per-channel occupation probability d (so mean
    particles per site is ``d * num_channels``).
    """
    rows = check_positive(rows, "rows", integer=True)
    cols = check_positive(cols, "cols", integer=True)
    num_channels = check_positive(num_channels, "num_channels", integer=True)
    density = check_probability(density, "density")
    state = np.zeros((rows, cols), dtype=np.uint8)
    for ch in range(num_channels):
        occupied = rng.random((rows, cols)) < density
        state |= occupied.astype(np.uint8) << np.uint8(ch)
    return state


def _biased_state(
    rows: int,
    cols: int,
    channel_probs: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Gas with independent per-channel occupation probability maps.

    ``channel_probs`` has shape ``(C, rows, cols)`` or ``(C,)``.
    """
    channel_probs = np.asarray(channel_probs, dtype=np.float64)
    if channel_probs.ndim == 1:
        channel_probs = channel_probs[:, None, None] * np.ones((1, rows, cols), dtype=np.float64)
    if np.any(channel_probs < 0) or np.any(channel_probs > 1):
        raise ValueError("channel probabilities must lie in [0, 1]")
    state = np.zeros((rows, cols), dtype=np.uint8)
    for ch in range(channel_probs.shape[0]):
        occupied = rng.random((rows, cols)) < channel_probs[ch]
        state |= occupied.astype(np.uint8) << np.uint8(ch)
    return state


def _drifted_probs(
    velocities: np.ndarray, density: float, drift: np.ndarray
) -> np.ndarray:
    """Per-channel occupations for a small mean drift velocity.

    Linearized equilibrium: ``f_i = d (1 + q * c_i . u)`` with q chosen
    for the channel set (2 for 4-channel HPP, 2 for 6-channel FHP in
    lattice units with |c|=1; the linear form is adequate for the small
    u the exclusion principle allows).
    """
    velocities = np.asarray(velocities, dtype=np.float64)
    drift = np.asarray(drift, dtype=np.float64)
    probs = density * (1.0 + 2.0 * velocities @ drift)
    return np.clip(probs, 0.0, 1.0)


def shear_flow_state(
    rows: int,
    cols: int,
    velocities: np.ndarray,
    density: float,
    shear_speed: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Counter-flowing horizontal streams: +x drift in the top half,
    −x drift in the bottom half (a Kelvin–Helmholtz-style initial shear).
    """
    rows = check_positive(rows, "rows", integer=True)
    cols = check_positive(cols, "cols", integer=True)
    density = check_probability(density, "density")
    velocities = np.asarray(velocities, dtype=np.float64)
    num_channels = velocities.shape[0]
    top = _drifted_probs(velocities, density, np.array([shear_speed, 0.0]))
    bottom = _drifted_probs(velocities, density, np.array([-shear_speed, 0.0]))
    probs = np.empty((num_channels, rows, cols), dtype=np.float64)
    half = rows // 2
    probs[:, :half, :] = top[:, None, None]
    probs[:, half:, :] = bottom[:, None, None]
    return _biased_state(rows, cols, probs, rng)


def channel_flow_state(
    rows: int,
    cols: int,
    velocities: np.ndarray,
    density: float,
    flow_speed: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Uniform +x drift everywhere: the inflow state for wake studies."""
    rows = check_positive(rows, "rows", integer=True)
    cols = check_positive(cols, "cols", integer=True)
    density = check_probability(density, "density")
    probs = _drifted_probs(
        np.asarray(velocities, dtype=np.float64), density, np.array([flow_speed, 0.0])
    )
    return _biased_state(rows, cols, probs, rng)


def density_pulse_state(
    rows: int,
    cols: int,
    num_channels: int,
    background_density: float,
    pulse_density: float,
    pulse_radius: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """A dense disk at the grid center in a dilute background.

    The pulse relaxes into an outgoing sound wave; whether the wavefront
    is circular (FHP) or square-diamond (HPP) is the isotropy
    demonstration of benchmark E12.
    """
    rows = check_positive(rows, "rows", integer=True)
    cols = check_positive(cols, "cols", integer=True)
    background_density = check_probability(background_density, "background_density")
    pulse_density = check_probability(pulse_density, "pulse_density")
    pulse_radius = check_positive(pulse_radius, "pulse_radius", integer=True)
    r = np.arange(rows)[:, None] - rows / 2.0
    c = np.arange(cols)[None, :] - cols / 2.0
    inside = (r * r + c * c) <= pulse_radius * pulse_radius
    probs = np.where(inside, pulse_density, background_density)
    channel_probs = np.broadcast_to(probs, (num_channels, rows, cols))
    return _biased_state(rows, cols, channel_probs, rng)


def directed_beam_state(
    rows: int,
    cols: int,
    channel: int,
    *,
    row_range: tuple[int, int] | None = None,
    col_range: tuple[int, int] | None = None,
) -> np.ndarray:
    """A deterministic beam: every site in a rectangle holds exactly one
    particle in ``channel``.  Used by unit tests to track propagation
    exactly."""
    rows = check_positive(rows, "rows", integer=True)
    cols = check_positive(cols, "cols", integer=True)
    state = np.zeros((rows, cols), dtype=np.uint8)
    r0, r1 = row_range if row_range is not None else (0, rows)
    c0, c1 = col_range if col_range is not None else (0, cols)
    state[r0:r1, c0:c1] = np.uint8(1 << channel)
    return state


def cylinder_obstacle(
    rows: int, cols: int, center: tuple[float, float], radius: float
) -> ObstacleMap:
    """A solid disk: the classic cylinder-wake body."""
    rows = check_positive(rows, "rows", integer=True)
    cols = check_positive(cols, "cols", integer=True)
    radius = check_positive(radius, "radius")
    r = np.arange(rows)[:, None] - float(center[0])
    c = np.arange(cols)[None, :] - float(center[1])
    return ObstacleMap((r * r + c * c) <= radius * radius)


def plate_obstacle(
    rows: int,
    cols: int,
    row: int,
    col_range: tuple[int, int],
    thickness: int = 1,
) -> ObstacleMap:
    """A flat plate spanning ``col_range`` at ``row`` (bluff-body flow)."""
    rows = check_positive(rows, "rows", integer=True)
    cols = check_positive(cols, "cols", integer=True)
    thickness = check_positive(thickness, "thickness", integer=True)
    mask = np.zeros((rows, cols), dtype=bool)
    c0, c1 = col_range
    if not (0 <= row < rows and 0 <= c0 < c1 <= cols):
        raise ValueError("plate does not fit in the grid")
    mask[row : min(row + thickness, rows), c0:c1] = True
    return ObstacleMap(mask)
