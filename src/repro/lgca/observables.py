"""Macroscopic observables of a lattice gas.

The whole point of an LGCA (section 2 of the paper) is that microscopic
boolean dynamics yield macroscopic fluid fields after coarse-graining.
This module computes the conserved quantities the collision rules are
verified against (mass, momentum) and the coarse-grained density /
velocity fields the flow examples visualize, plus the Reynolds-number
scaling relation of reference [10] (Orszag & Yakhot) that the paper uses
to argue "very large Reynolds numbers will require huge lattices".
"""

from __future__ import annotations

import numpy as np

from repro.lgca.bits import popcount, unpack_channels
from repro.util.validation import check_positive

__all__ = [
    "density_field",
    "momentum_field",
    "total_mass",
    "total_momentum",
    "coarse_grain",
    "mean_velocity_field",
    "reynolds_number",
    "fhp_viscosity",
    "galilean_factor",
]


def density_field(state: np.ndarray, num_channels: int) -> np.ndarray:
    """Particles per site: the microscopic density field."""
    return popcount(np.asarray(state), num_channels).astype(np.float64)


def momentum_field(state: np.ndarray, velocities: np.ndarray) -> np.ndarray:
    """Per-site momentum vectors, shape ``state.shape + (2,)``."""
    velocities = np.asarray(velocities, dtype=np.float64)
    channels = unpack_channels(np.asarray(state), velocities.shape[0])
    out = np.zeros(np.asarray(state).shape + (2,), dtype=np.float64)
    for ch in range(velocities.shape[0]):
        out += channels[ch][..., None] * velocities[ch]
    return out


def total_mass(state: np.ndarray, num_channels: int) -> int:
    """Total particle count — conserved exactly by collide and propagate."""
    return int(density_field(state, num_channels).sum())


def total_momentum(state: np.ndarray, velocities: np.ndarray) -> np.ndarray:
    """Total momentum vector — conserved on periodic lattices."""
    return momentum_field(state, velocities).sum(axis=(0, 1))


def coarse_grain(field: np.ndarray, window: int) -> np.ndarray:
    """Average ``field`` over non-overlapping ``window x window`` blocks.

    Trailing component axes (e.g. the 2-vector of a momentum field) are
    preserved.  Grid dimensions must be divisible by ``window``.
    """
    window = check_positive(window, "window", integer=True)
    field = np.asarray(field, dtype=np.float64)
    rows, cols = field.shape[0], field.shape[1]
    if rows % window or cols % window:
        raise ValueError(
            f"field shape {(rows, cols)} not divisible by window={window}"
        )
    shape = (rows // window, window, cols // window, window) + field.shape[2:]
    return field.reshape(shape).mean(axis=(1, 3))


def mean_velocity_field(
    state: np.ndarray,
    velocities: np.ndarray,
    num_channels: int,
    window: int = 1,
) -> np.ndarray:
    """Coarse-grained fluid velocity u = <momentum> / <density>.

    Empty coarse cells get velocity 0 (a convention, noted rather than
    NaN-propagated, since benches difference these fields).
    """
    rho = coarse_grain(density_field(state, num_channels), window)
    mom = coarse_grain(momentum_field(state, velocities), window)
    with np.errstate(invalid="ignore", divide="ignore"):
        u = mom / rho[..., None]
    u[~np.isfinite(u)] = 0.0
    return u


def fhp_viscosity(density_per_channel: float, *, rest_particles: bool = False) -> float:
    """Boltzmann-approximation kinematic shear viscosity of the FHP gas.

    For FHP-I (6 channels) the lattice-Boltzmann result is

        nu(d) = (1 / 12) * 1 / (d (1 - d)^3)  -  1 / 8

    with ``d`` the mean occupation per channel (Frisch et al. 1987,
    Complex Systems 1:649).  The 7-bit model has a smaller viscosity
    because the extra collisions relax stress faster; we use the FHP-II
    coefficient 1/28 d(1-d)^3 with its own propagation correction.

    This is used by the Reynolds-scaling helper below; the reproduction
    does not depend on the absolute value, only on its density shape.
    """
    d = float(density_per_channel)
    if not 0.0 < d < 1.0:
        raise ValueError(f"density_per_channel={d} must lie strictly in (0, 1)")
    if rest_particles:
        return (1.0 / 28.0) / (d * (1.0 - d) ** 3) - 1.0 / 8.0
    return (1.0 / 12.0) / (d * (1.0 - d) ** 3) - 1.0 / 8.0


def galilean_factor(density_per_channel: float) -> float:
    """The g(d) factor restoring Galilean invariance for FHP.

    ``g(d) = (3 - 6d) / (3 - 3d)`` (FHP-I form).  Appears in the
    effective Reynolds number: Re = g(d) u L / nu(d).
    """
    d = float(density_per_channel)
    if not 0.0 < d < 1.0:
        raise ValueError(f"density_per_channel={d} must lie strictly in (0, 1)")
    return (3.0 - 6.0 * d) / (3.0 - 3.0 * d)


def reynolds_number(
    lattice_size: float,
    flow_speed: float,
    density_per_channel: float = 1.0 / 7.0,
    *,
    rest_particles: bool = False,
) -> float:
    """Effective Reynolds number of an FHP flow (reference [10] scaling).

    Re = g(d) * u * L / nu(d).  The paper's point — that Reynolds number
    grows only linearly in lattice size, so "very large Reynolds Numbers
    will require huge lattices and correspondingly huge computation
    rates" — is benchmark E12's second panel.
    """
    lattice_size = check_positive(lattice_size, "lattice_size")
    flow_speed = check_positive(flow_speed, "flow_speed")
    nu = fhp_viscosity(density_per_channel, rest_particles=rest_particles)
    if nu <= 0:
        raise ValueError(
            f"viscosity {nu} not positive at density {density_per_channel}"
        )
    return galilean_factor(density_per_channel) * flow_speed * lattice_size / nu
