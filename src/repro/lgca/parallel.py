"""Multicore bit-plane stepping: row-slab tiles on a persistent thread pool.

The paper scales site-update rate R by replicating processing elements —
P PEs in the WSA, P×W in the SPA — under a shared-memory bandwidth
ceiling.  :class:`ParallelStepper` is the direct software analogue: the
lattice is tiled into horizontal slabs (one
:class:`~repro.lattice.slabs.Shard` per worker, planned by the same slab
planner the supervised runtime uses), each slab is stepped by its own
:class:`~repro.lgca.bitplane.BitplaneKernel` on a **persistent**
``ThreadPoolExecutor``, and the two-row halos are exchanged by direct
writes into the neighbour tile's padded plane arrays — no pickling, no
IPC, no per-tick allocation.  NumPy's ufuncs release the GIL for the
bulk word-level work, so the tiles genuinely overlap on multicore hosts.

Bit-identity to the single-slab ``"bitplane"`` backend (and therefore to
the reference kernels) holds for **every** model, boundary, chirality
policy, and obstacle map, at any worker count:

* slab-local frames start on an even global row and obstacle masks are
  sliced halos-included, so collisions in halo rows reproduce the
  global rows they shadow;
* propagation moves particles at most one row per generation, so every
  sub-lattice boundary artifact (row wrap, absorption, same-site
  reflection) lands in halo rows, which are refreshed from the
  neighbours' interiors before they are ever read again;
* for ``reflecting`` boundaries the edge shards carry **no** outer halo
  (``edge_halos=False`` planning), so the local frame edge coincides
  with the true wall and the local model's reflection fires exactly
  where the global one does;
* per-site ``random`` chirality — which independent worker *processes*
  cannot shard — works here because the coordinator draws the
  whole-lattice field from the caller's RNG exactly once per
  generation (the same stream the serial kernel consumes), packs it,
  and the tiles gather their local-frame rows from the shared planes.

Within a generation the only cross-tile accesses are reads of the
neighbours' *interior* rows and writes to a tile's *own* halo rows —
disjoint row ranges — and the per-generation barrier (joining the
futures) orders halo refresh, stepping, and the coordinator's
ping-pong swap, so the scheme is race-free by construction.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.lattice.slabs import BOUNDARY_ROWS, Shard, plan_shards
from repro.lgca.bitplane import BitplaneKernel, num_words, pack_plane, pack_state, unpack_state
from repro.lgca.fhp import FHPModel
from repro.lgca.hpp import HPPModel
from repro.telemetry import NULL_RECORDER, Recorder
from repro.util.errors import ConfigError
from repro.util.hotpath import hot_path

__all__ = [
    "AUTO_WORKERS",
    "MIN_AUTO_SLAB_ROWS",
    "ParallelStepper",
    "resolve_workers",
]

#: The ``workers`` value requesting host-aware worker selection.
AUTO_WORKERS = "auto"

#: Under ``workers="auto"``, don't split slabs thinner than this: below
#: ~256 rows the per-generation submit/join overhead of the pool is
#: comparable to the slab's word-level work and single-slab stepping
#: (= the plain bitplane kernel) wins.
MIN_AUTO_SLAB_ROWS = 256


def resolve_workers(workers: int | str | None, rows: int) -> int:
    """The effective tile count for a ``rows``-row lattice.

    ``"auto"`` (or ``None``) picks ``os.cpu_count()``-aware defaults and
    degrades to 1 for small lattices where fork/join overhead loses.
    Explicit counts are validated, then clamped so every slab keeps the
    :data:`~repro.lattice.slabs.BOUNDARY_ROWS` rows halo exchange needs
    — ``workers > rows // 2`` degrades gracefully instead of failing.
    """
    if workers is None or workers == AUTO_WORKERS:
        requested = min(os.cpu_count() or 1, rows // MIN_AUTO_SLAB_ROWS)
    else:
        if isinstance(workers, str):
            if not workers.isdigit():
                raise ConfigError(
                    f"workers={workers!r} must be a positive integer or "
                    f"{AUTO_WORKERS!r}"
                )
            workers = int(workers)
        if isinstance(workers, bool) or not isinstance(workers, (int, np.integer)):
            raise ConfigError(
                f"workers={workers!r} must be a positive integer or "
                f"{AUTO_WORKERS!r}"
            )
        if workers < 1:
            raise ConfigError(
                f"workers={workers!r} must be a positive integer or "
                f"{AUTO_WORKERS!r}"
            )
        requested = int(workers)
    return max(1, min(requested, rows // BOUNDARY_ROWS))


def _local_model(model: object, local_rows: int) -> HPPModel | FHPModel:
    """Rebuild ``model`` at a shard's local-frame height."""
    if isinstance(model, FHPModel):
        return FHPModel(
            local_rows,
            model.cols,
            rest_particles=model.rest_particles,
            boundary=model.boundary,
            chirality=model.chirality,
            saturated=model.saturated,
        )
    if isinstance(model, HPPModel):
        return HPPModel(local_rows, model.cols, boundary=model.boundary)
    raise ConfigError(
        f"no parallel kernel for model type {type(model).__name__}"
    )


class _SlabTile:
    """One worker's slab: a local kernel pinned to preallocated planes.

    ``src``/``dst`` are padded ``(C, local_rows, W)`` plane buffers the
    coordinator ping-pongs between generations; ``chir_left`` /
    ``chir_right`` (random chirality only) are the local-frame views of
    the globally drawn chirality field, registered with the kernel via
    :meth:`BitplaneKernel.set_external_chirality` once at construction
    and rewritten in place each generation.
    """

    __slots__ = (
        "shard",
        "kernel",
        "src",
        "dst",
        "above",
        "below",
        "row_indices",
        "chir_left",
        "chir_right",
        "halo_timer",
        "step_timer",
    )

    def __init__(self, shard: Shard, kernel: BitplaneKernel):
        self.shard = shard
        self.kernel = kernel
        self.src = kernel.alloc_planes()
        self.dst = kernel.alloc_planes()
        self.above: _SlabTile | None = None
        self.below: _SlabTile | None = None
        self.row_indices: np.ndarray | None = None
        self.chir_left: np.ndarray | None = None
        self.chir_right: np.ndarray | None = None
        # Pre-bound per-tile telemetry handles (set by the coordinator).
        # Each tile is advanced by exactly one pool task per generation
        # and the futures join orders generations, so writes to a tile's
        # own timers never race.
        self.halo_timer = None
        self.step_timer = None

    def swap(self) -> None:
        """Ping-pong the plane buffers (coordinator only, at the barrier)."""
        self.src, self.dst = self.dst, self.src


class ParallelStepper:
    """Thread-tiled bit-plane stepping behind the ``KernelStepper`` interface.

    Tiles the lattice into row slabs, steps each slab with its own
    :class:`~repro.lgca.bitplane.BitplaneKernel` on a persistent thread
    pool, and exchanges halos by direct writes — see the module
    docstring for the bit-identity and race-freedom arguments.  With an
    effective worker count of 1 (small lattices, ``workers=1``, or a
    lattice too short to split) it degrades to a plain single-slab
    :class:`~repro.lgca.backends.BitplaneStepper` with no pool at all.

    Parameters
    ----------
    model:
        The reference model to compile (HPP or FHP).
    obstacles:
        Optional solid-site mask (``ObstacleMap`` or boolean array).
    workers:
        Tile/thread count: a positive int, ``"auto"`` (the default;
        host- and lattice-aware), or ``None`` (same as ``"auto"``).
        Clamped so every slab stays tall enough for halo exchange.
    recorder:
        Optional :class:`~repro.telemetry.Recorder`.  The coordinator
        records whole-lattice generation times on
        ``kernel.parallel.tick_seconds``; each tile records its halo
        refresh and kernel step on its own pre-bound
        ``kernel.parallel.{halo,step}.tileNN_seconds`` timers (distinct
        handles per tile, so worker threads never share a timer).
    """

    def __init__(
        self,
        model: object,
        obstacles: object = None,
        workers: int | str | None = AUTO_WORKERS,
        recorder: Recorder | None = None,
    ):
        if not isinstance(model, (HPPModel, FHPModel)):
            raise ConfigError(
                f"no parallel kernel for model type {type(model).__name__}"
            )
        self.model = model
        rows: int = model.rows
        cols: int = model.cols
        self.workers = resolve_workers(workers, rows)
        self._single = None
        self._pool: ThreadPoolExecutor | None = None
        rec = recorder if recorder is not None else NULL_RECORDER
        self._clk = rec.clock
        self._tick_timer = rec.timer("kernel.parallel.tick_seconds")
        self._generations = rec.counter("kernel.parallel.generations")
        if self.workers == 1:
            # Single slab: the plain bitplane stepper IS the semantics;
            # skip the pool (and its per-generation submit/join cost).
            from repro.lgca.backends import BitplaneStepper

            self._single = BitplaneStepper(model, obstacles, recorder=recorder)
            self.num_channels: int = self._single.kernel.num_channels
            self.shards: tuple[Shard, ...] = ()
            return

        boundary: str = model.boundary  # type: ignore[attr-defined]
        self.shards = plan_shards(rows, self.workers, edge_halos=boundary == "periodic")
        self._random_chirality = (
            isinstance(model, FHPModel) and model.chirality == "random"
        )
        mask = getattr(obstacles, "mask", obstacles)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (rows, cols):
                raise ValueError(
                    f"obstacle shape {mask.shape} != grid shape {(rows, cols)}"
                )
            if not mask.any():
                mask = None

        words = num_words(cols)
        self._tiles: list[_SlabTile] = []
        for i, shard in enumerate(self.shards):
            local = _local_model(model, shard.local_rows)
            indices = shard.local_row_indices(rows)
            local_mask = None if mask is None else mask[indices]
            tile = _SlabTile(shard, BitplaneKernel(local, local_mask))
            tile.halo_timer = rec.timer(f"kernel.parallel.halo.tile{i:02d}_seconds")
            tile.step_timer = rec.timer(f"kernel.parallel.step.tile{i:02d}_seconds")
            if self._random_chirality:
                tile.row_indices = indices
                tile.chir_left = np.empty((shard.local_rows, words), dtype=np.uint64)
                tile.chir_right = np.empty((shard.local_rows, words), dtype=np.uint64)
                tile.kernel.set_external_chirality((tile.chir_left, tile.chir_right))
            self._tiles.append(tile)
        periodic = boundary == "periodic"
        n = len(self._tiles)
        for i, tile in enumerate(self._tiles):
            if i > 0 or periodic:
                tile.above = self._tiles[(i - 1) % n]
            if i < n - 1 or periodic:
                tile.below = self._tiles[(i + 1) % n]

        self.num_channels = self._tiles[0].kernel.num_channels
        self._gplanes = np.zeros((self.num_channels, rows, words), dtype=np.uint64)
        self._field = np.empty((rows, cols), dtype=np.uint8)
        if self._random_chirality:
            self._chir_left_g = np.empty((rows, words), dtype=np.uint64)
            self._chir_right_g = np.empty((rows, words), dtype=np.uint64)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-parallel"
        )

    def close(self) -> None:
        """Shut the worker pool down (idempotent; the stepper is dead after)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    @hot_path
    def _advance_tile(self, tile: _SlabTile, t: int) -> None:
        """One tile generation: refresh halos, then step (worker thread).

        Reads neighbours' interior rows, writes this tile's own halo
        rows and ``dst`` planes only — row ranges other concurrent tasks
        never write, so the phase needs no locks.
        """
        clk = self._clk
        t_start = clk()
        shard = tile.shard
        if tile.above is not None:
            above = tile.above.shard
            stop = above.halo_top + above.slab_rows
            tile.src[:, : shard.halo_top, :] = tile.above.src[
                :, stop - shard.halo_top : stop, :
            ]
        if tile.below is not None:
            below = tile.below.shard
            lo = shard.halo_top + shard.slab_rows
            tile.src[:, lo:, :] = tile.below.src[
                :, below.halo_top : below.halo_top + shard.halo_bottom, :
            ]
        if self._random_chirality:
            np.take(self._chir_left_g, tile.row_indices, axis=0, out=tile.chir_left)
            np.take(self._chir_right_g, tile.row_indices, axis=0, out=tile.chir_right)
        t_mid = clk()
        tile.halo_timer.record(t_mid - t_start)
        tile.kernel.step_into(tile.src, tile.dst, t, None)
        tile.step_timer.record(clk() - t_mid)

    @hot_path
    def step(
        self,
        state: np.ndarray,
        t: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        return self.run(state, 1, t, rng)

    @hot_path
    def run(
        self,
        state: np.ndarray,
        generations: int,
        t0: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        if self._single is not None:
            return self._single.run(state, generations, t0, rng)
        state = self.model.check_state(state)  # type: ignore[attr-defined]
        if generations == 0:
            return state
        if self._pool is None:
            raise RuntimeError("ParallelStepper is closed")
        tiles = self._tiles
        gplanes = self._gplanes
        gplanes[...] = pack_state(state, self.num_channels)
        for tile in tiles:
            shard = tile.shard
            tile.src[:, shard.interior, :] = gplanes[
                :, shard.row_start : shard.row_stop, :
            ]
        submit = self._pool.submit
        clk = self._clk
        tick_timer = self._tick_timer
        for i in range(generations):
            t = t0 + i
            t_start = clk()
            if self._random_chirality:
                # One whole-lattice draw per generation — the exact RNG
                # stream the serial bitplane kernel consumes.
                field = self.model.chirality_field(t, rng)  # type: ignore[attr-defined]
                self._chir_left_g[...] = pack_plane(field)  # repro: alloc-ok
                self._chir_right_g[...] = pack_plane(~field)  # repro: alloc-ok
            futures = [submit(self._advance_tile, tile, t) for tile in tiles]
            for future in futures:
                future.result()  # the barrier; re-raises worker errors
            for tile in tiles:
                tile.swap()
            tick_timer.record(clk() - t_start)
        self._generations.add(generations)
        for tile in tiles:
            shard = tile.shard
            gplanes[:, shard.row_start : shard.row_stop, :] = tile.src[
                :, shard.interior, :
            ]
        cols: int = self.model.cols  # type: ignore[attr-defined]
        return unpack_state(gplanes, cols, out=self._field)
