"""Collision-rule tables and conservation verification.

Section 2 of the paper requires collision rules to "satisfy certain
physically plausible laws, especially particle-number (mass) conservation
and momentum conservation".  :class:`CollisionTable` encodes a rule set
as a full lookup table over all ``2^D`` site states — which is exactly
how the paper's VLSI processing elements implement them — and
:func:`verify_conservation` machine-checks the conservation laws for
*every* entry, so a table that violates the physics cannot be constructed
silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lgca.bits import popcount_table
from repro.util.validation import check_positive

__all__ = ["CollisionTable", "ConservationError", "verify_conservation"]


class ConservationError(ValueError):
    """A collision table violates mass or momentum conservation."""


def _momenta_per_state(velocities: np.ndarray) -> np.ndarray:
    """(2^C, 2) array: net momentum of every state under ``velocities``."""
    num_channels = velocities.shape[0]
    states = np.arange(1 << num_channels, dtype=np.uint32)
    momenta = np.zeros((states.size, 2), dtype=np.float64)
    for bit in range(num_channels):
        occupied = ((states >> bit) & 1).astype(np.float64)
        momenta += occupied[:, None] * velocities[bit]
    return momenta


def verify_conservation(
    table: np.ndarray,
    velocities: np.ndarray,
    *,
    check_momentum: bool = True,
    ignore_mask: int = 0,
    atol: float = 1e-12,
) -> None:
    """Check mass (and optionally momentum) conservation of a lookup table.

    Parameters
    ----------
    table:
        ``(2^C,)`` integer array mapping input state to output state.
    velocities:
        ``(C, 2)`` per-channel velocity vectors; a rest particle has
        velocity ``(0, 0)``.
    check_momentum:
        FHP/HPP tables must conserve momentum; boundary/bounce-back
        tables conserve only mass, so callers may disable it.
    ignore_mask:
        Bits (e.g. an obstacle flag) excluded from the conservation sums.
    atol:
        Momentum tolerance (velocities may be irrational for hex lattices).

    Raises
    ------
    ConservationError
        naming the first offending state.
    """
    velocities = np.asarray(velocities, dtype=np.float64)
    if velocities.ndim != 2 or velocities.shape[1] != 2:
        raise ValueError("velocities must have shape (C, 2)")
    num_channels = velocities.shape[0]
    expected_size = 1 << num_channels
    table = np.asarray(table)
    if table.shape != (expected_size,):
        raise ValueError(
            f"table has shape {table.shape}, expected ({expected_size},) "
            f"for {num_channels} channels"
        )
    if table.min() < 0 or table.max() >= expected_size:
        raise ConservationError("table maps to states outside the channel space")

    pc = popcount_table(num_channels)
    keep = np.uint32(~ignore_mask & (expected_size - 1))
    states = np.arange(expected_size, dtype=np.uint32)
    mass_in = pc[states & keep]
    mass_out = pc[table.astype(np.uint32) & keep]
    bad = np.nonzero(mass_in != mass_out)[0]
    if bad.size:
        s = int(bad[0])
        raise ConservationError(
            f"mass not conserved: state {s:#x} ({int(mass_in[s])} particles) "
            f"-> {int(table[s]):#x} ({int(mass_out[s])} particles)"
        )
    if check_momentum:
        momenta = _momenta_per_state(velocities)
        p_in = momenta[states & keep]
        p_out = momenta[table.astype(np.uint32) & keep]
        err = np.abs(p_in - p_out).max(axis=1)
        bad = np.nonzero(err > atol)[0]
        if bad.size:
            s = int(bad[0])
            raise ConservationError(
                f"momentum not conserved: state {s:#x} p={p_in[s]} -> "
                f"{int(table[s]):#x} p={p_out[s]}"
            )


@dataclass(frozen=True)
class CollisionTable:
    """A verified site-update lookup table.

    This is the paper's PE "microcode": the function *f* in
    ``v(a, t+1) = f(N(a), t)`` restricted to the on-site collision step
    (propagation supplies the neighborhood).  Construction verifies the
    conservation laws, so holding a :class:`CollisionTable` is a proof
    the physics is right.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"fhp6/left"``.
    table:
        ``(2^C,)`` uint16 lookup array.
    velocities:
        ``(C, 2)`` channel velocity vectors.
    conserves_momentum:
        Whether momentum conservation was verified (False for wall rules).
    """

    name: str
    table: np.ndarray
    velocities: np.ndarray
    conserves_momentum: bool = True
    ignore_mask: int = 0
    _skip_verify: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        velocities = np.asarray(self.velocities, dtype=np.float64)
        table = np.asarray(self.table, dtype=np.uint16)
        if not self._skip_verify:
            verify_conservation(
                table,
                velocities,
                check_momentum=self.conserves_momentum,
                ignore_mask=self.ignore_mask,
            )
        table = table.copy()
        table.setflags(write=False)
        velocities = velocities.copy()
        velocities.setflags(write=False)
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "velocities", velocities)
        object.__setattr__(self, "_table_cache", {})

    def _table_for(self, dtype: np.dtype) -> np.ndarray:
        """The lookup table cast to ``dtype`` (cached, read-only).

        Only cast when every table value fits the requested dtype;
        otherwise return the canonical uint16 table.
        """
        cache: dict[np.dtype, np.ndarray] = getattr(self, "_table_cache")
        cached = cache.get(dtype)
        if cached is None:
            if self.num_states - 1 <= int(np.iinfo(dtype).max):
                cached = self.table.astype(dtype)
                cached.setflags(write=False)
            else:
                cached = self.table
            cache[dtype] = cached
        return cached

    @property
    def num_channels(self) -> int:
        return int(self.velocities.shape[0])

    @property
    def num_states(self) -> int:
        return int(self.table.size)

    def __call__(
        self, states: np.ndarray | int, out: np.ndarray | None = None
    ) -> np.ndarray | int:
        """Apply the collision rule to a state or field of states.

        The result preserves the input dtype (a ``uint8`` field stays
        ``uint8`` — no ``.astype`` copy needed by callers), and ``out``
        accepts a preallocated result buffer of the same shape and dtype
        for zero-allocation stepping.  ``out`` must not alias ``states``.
        """
        if np.isscalar(states):
            return int(self.table[int(states)])
        states = np.asarray(states)
        if not np.issubdtype(states.dtype, np.integer):
            return self.table[states]
        table = self._table_for(states.dtype)
        if out is None:
            return table[states]
        return np.take(table, states, out=out)

    def is_identity(self) -> bool:
        """Whether the table is a no-op (useful in tests)."""
        return bool(np.array_equal(self.table, np.arange(self.num_states)))

    def fixed_points(self) -> np.ndarray:
        """States the rule leaves unchanged."""
        states = np.arange(self.num_states, dtype=np.uint16)
        return states[self.table == states]

    def is_involution(self) -> bool:
        """Whether applying the rule twice is the identity.

        Two-body FHP/HPP collisions with a fixed chirality are
        involutions; this is a structural invariant tests rely on.
        """
        return bool(np.array_equal(self.table[self.table], np.arange(self.num_states)))

    def compose(self, other: "CollisionTable", name: str | None = None) -> "CollisionTable":
        """The rule "apply ``other``, then ``self``" as a single table."""
        if other.num_channels != self.num_channels:
            raise ValueError("cannot compose tables over different channel sets")
        return CollisionTable(
            name=name or f"{self.name}∘{other.name}",
            table=self.table[other.table],
            velocities=self.velocities,
            conserves_momentum=self.conserves_momentum and other.conserves_momentum,
            ignore_mask=self.ignore_mask | other.ignore_mask,
        )


def identity_table(
    num_channels: int, velocities: np.ndarray, name: str = "identity"
) -> CollisionTable:
    """The no-collision rule (propagation only)."""
    num_channels = check_positive(num_channels, "num_channels", integer=True)
    return CollisionTable(
        name=name,
        table=np.arange(1 << num_channels, dtype=np.uint16),
        velocities=velocities,
    )
