"""Kinetic diagnostics for lattice gases.

These measurements back the physical claims the paper leans on:

* :func:`collision_rate` — the fraction of sites whose state changes in
  a collision step.  FHP-I < FHP-II < saturated, which is the whole
  point of richer collision sets (viscosity falls as collisions rise).
* :func:`channel_occupation` — per-channel mean occupation; an
  equilibrated unbiased gas approaches equal occupation of all moving
  channels (the Fermi–Dirac equilibrium of a boolean gas).
* :func:`measure_shear_viscosity` — the real experiment: initialize a
  sinusoidal transverse shear wave and fit the exponential decay of its
  amplitude, ``a(t) = a(0) · exp(−ν k² t)``.  The fitted kinematic
  viscosity is compared (in tests and benches) against the Boltzmann
  prediction of :func:`repro.lgca.observables.fhp_viscosity` — the
  reproduction's strongest physics check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.lgca.automaton import SiteModel
from repro.lgca.bits import unpack_channels
from repro.lgca.flows import _biased_state, _drifted_probs
from repro.util.validation import check_positive

__all__ = [
    "collision_rate",
    "channel_occupation",
    "ViscosityMeasurement",
    "measure_shear_viscosity",
    "SoundSpeedMeasurement",
    "measure_sound_speed",
]


def collision_rate(
    model: SiteModel,
    state: np.ndarray,
    t: int = 0,
    rng: np.random.Generator | None = None,
) -> float:
    """Fraction of sites whose state changes under one collision step."""
    state = model.check_state(state)
    collided = model.collide(state, t, rng)
    return float(np.count_nonzero(collided != state) / state.size)


def channel_occupation(state: np.ndarray, num_channels: int) -> np.ndarray:
    """Mean occupation of each velocity channel, shape ``(C,)``."""
    num_channels = check_positive(num_channels, "num_channels", integer=True)
    channels = unpack_channels(np.asarray(state), num_channels)
    return channels.reshape(num_channels, -1).mean(axis=1)


@dataclass(frozen=True)
class ViscosityMeasurement:
    """Result of a shear-wave decay experiment.

    Attributes
    ----------
    measured:
        Fitted kinematic viscosity ν.
    predicted:
        Boltzmann-approximation ν(d) for the same per-channel density.
    wavenumber:
        k of the initialized shear wave.
    amplitudes:
        Recorded shear amplitude per time step (for plotting).
    r_squared:
        Goodness of the log-linear fit.
    """

    measured: float
    predicted: float
    wavenumber: float
    amplitudes: np.ndarray
    r_squared: float

    @property
    def relative_error(self) -> float:
        return abs(self.measured - self.predicted) / abs(self.predicted)


@dataclass(frozen=True)
class SoundSpeedMeasurement:
    """Result of a sound-wave dispersion experiment.

    Attributes
    ----------
    measured:
        c_s from the fitted oscillation frequency, ω / k.
    predicted:
        The Boltzmann sound speed: 1/√2 for the 6-bit FHP gas,
        √(3/7) for the 7-bit gas at low speed.
    wavenumber:
        k of the initialized density wave.
    amplitudes:
        The recorded density-mode time series.
    """

    measured: float
    predicted: float
    wavenumber: float
    amplitudes: np.ndarray

    @property
    def relative_error(self) -> float:
        return abs(self.measured - self.predicted) / self.predicted


def measure_sound_speed(
    model: SiteModel,
    density: float,
    amplitude: float,
    steps: int,
    rng: np.random.Generator,
) -> SoundSpeedMeasurement:
    """Measure the sound speed from a standing density wave.

    A plane density perturbation ``δρ ∝ cos(k x)`` (k = 2π/cols along
    the columns) oscillates at ω = c_s·k; the dominant FFT frequency of
    the recorded mode amplitude gives c_s.  For FHP the prediction is
    ``c_s = 1/√2`` (6-bit) — one of the standard quantitative checks of
    the model's hydrodynamics.
    """
    steps = check_positive(steps, "steps", integer=True)
    rows, cols = model.rows, model.cols
    velocities = np.asarray(model.velocities, dtype=np.float64)
    num_channels = velocities.shape[0]
    k = 2.0 * math.pi / cols

    cols_idx = np.arange(cols)
    probs = np.empty((num_channels, rows, cols), dtype=np.float64)
    modulation = density * (1.0 + amplitude * np.cos(k * cols_idx))
    probs[:, :, :] = np.clip(modulation, 0.0, 1.0)[None, None, :]
    state = _biased_state(rows, cols, probs, rng)

    basis = np.cos(k * cols_idx)
    norm = basis @ basis

    def mode(s: np.ndarray) -> float:
        from repro.lgca.bits import popcount

        col_density = popcount(s, num_channels).astype(np.float64).sum(axis=0)
        return float((col_density * basis).sum() / norm)

    series = np.empty(steps + 1, dtype=np.float64)
    series[0] = mode(state)
    for t in range(steps):
        state = model.step(state, t, rng)
        series[t + 1] = mode(state)

    # dominant oscillation frequency (exclude the DC bin)
    demeaned = series - series.mean()
    spectrum = np.abs(np.fft.rfft(demeaned))
    freqs = np.fft.rfftfreq(series.size, d=1.0)
    peak = int(np.argmax(spectrum[1:])) + 1
    omega = 2.0 * math.pi * float(freqs[peak])
    measured = omega / k

    predicted = math.sqrt(3.0 / 7.0) if num_channels == 7 else 1.0 / math.sqrt(2.0)
    return SoundSpeedMeasurement(
        measured=measured,
        predicted=predicted,
        wavenumber=k,
        amplitudes=series,
    )


def _shear_amplitude(state: np.ndarray, velocities: np.ndarray, k: float) -> float:
    """Projection of the x-momentum profile onto sin(k·row)."""
    channels = unpack_channels(state, velocities.shape[0])
    ux_per_row = np.zeros(state.shape[0], dtype=np.float64)
    for ch in range(velocities.shape[0]):
        ux_per_row += channels[ch].sum(axis=1) * velocities[ch][0]
    rows = np.arange(state.shape[0])
    basis = np.sin(k * (rows + 0.5))
    return float(2.0 * (ux_per_row * basis).sum() / (state.shape[0] * basis @ basis))


def measure_shear_viscosity(
    model: SiteModel,
    density: float,
    amplitude: float,
    steps: int,
    rng: np.random.Generator,
    *,
    discard: int = 5,
) -> ViscosityMeasurement:
    """Fit ν from the decay of a transverse shear wave.

    The gas starts in linearized local equilibrium with
    ``u_x(y) = amplitude · sin(k y)``, ``k = 2π / rows``; under
    Navier–Stokes dynamics the mode decays as ``exp(−ν k² t)``.

    Parameters
    ----------
    model:
        A periodic FHP-family model (hexagonal velocities expected).
    density:
        Per-channel occupation d.
    amplitude:
        Initial shear speed (keep ≲ 0.2 for the linear regime).
    steps:
        Evolution length; a few hundred for a clean fit.
    discard:
        Initial transient steps excluded from the fit (the gas takes a
        few collisions to reach local equilibrium).
    """
    steps = check_positive(steps, "steps", integer=True)
    rows, cols = model.rows, model.cols
    k = 2.0 * math.pi / rows
    velocities = np.asarray(model.velocities, dtype=np.float64)

    # per-row drifted channel probabilities
    probs = np.empty((velocities.shape[0], rows, cols), dtype=np.float64)
    for r in range(rows):
        u = amplitude * math.sin(k * (r + 0.5))
        p = _drifted_probs(velocities, density, np.array([u, 0.0]))
        probs[:, r, :] = p[:, None]
    state = _biased_state(rows, cols, probs, rng)

    amplitudes = np.empty(steps + 1, dtype=np.float64)
    amplitudes[0] = _shear_amplitude(state, velocities, k)
    for t in range(steps):
        state = model.step(state, t, rng)
        amplitudes[t + 1] = _shear_amplitude(state, velocities, k)

    ts = np.arange(discard, steps + 1, dtype=np.float64)
    ys = amplitudes[discard:]
    sign = np.sign(ys[0]) or 1.0
    ys = ys * sign
    usable = ys > max(1e-9, 0.02 * abs(amplitudes[0]))
    if usable.sum() < 10:
        raise ValueError(
            "shear wave decayed below the noise floor too quickly; "
            "use a larger lattice or fewer steps"
        )
    ts, logy = ts[usable], np.log(ys[usable])
    slope, intercept = np.polyfit(ts, logy, 1)
    fitted = slope * ts + intercept
    ss_res = float(((logy - fitted) ** 2).sum())
    ss_tot = float(((logy - logy.mean()) ** 2).sum()) or 1e-30
    nu = -slope / (k * k)

    from repro.lgca.observables import fhp_viscosity

    rest = velocities.shape[0] == 7
    predicted = fhp_viscosity(density, rest_particles=rest)
    return ViscosityMeasurement(
        measured=float(nu),
        predicted=float(predicted),
        wavenumber=k,
        amplitudes=amplitudes,
        r_squared=1.0 - ss_res / ss_tot,
    )
