"""The reference synchronous LGCA driver.

:class:`LatticeGasAutomaton` couples a model (HPP or FHP kernels), a
mutable state field, an optional obstacle map, and an RNG, and advances
the gas generation by generation.  **This is the golden reference** —
every engine simulator in :mod:`repro.engines` is required (by the
integration tests) to produce bit-identical evolutions to this class for
deterministic configurations.

Obstacles are realized as bounce-back sites: at an obstacle site the
collision step is replaced by velocity reversal (``i -> i + n/2``), the
standard no-slip body condition for lattice gases, which conserves mass
(momentum is deliberately exchanged with the body — that is what drag
*is*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.util.validation import check_nonnegative

__all__ = ["LatticeGasAutomaton", "ObstacleMap", "bounce_back_table"]


class SiteModel(Protocol):
    """The kernel interface shared by HPPModel and FHPModel."""

    rows: int
    cols: int

    @property
    def num_channels(self) -> int: ...

    @property
    def bits_per_site(self) -> int: ...

    @property
    def velocities(self) -> np.ndarray: ...

    def check_state(self, state: np.ndarray) -> np.ndarray: ...

    def collide(
        self, state: np.ndarray, t: int = 0, rng: np.random.Generator | None = None
    ) -> np.ndarray: ...

    def propagate(self, state: np.ndarray) -> np.ndarray: ...


def bounce_back_table(num_channels: int) -> np.ndarray:
    """Lookup table reversing every moving particle's velocity.

    For 6/7-channel FHP, channel ``i`` maps to ``(i + 3) % 6``; for
    4-channel HPP, to ``(i + 2) % 4``.  A rest particle (channel 6) is
    unaffected.  The table conserves mass exactly.
    """
    if num_channels == 4:
        opposite = [2, 3, 0, 1]
    elif num_channels == 6:
        opposite = [3, 4, 5, 0, 1, 2]
    elif num_channels == 7:
        opposite = [3, 4, 5, 0, 1, 2, 6]
    else:
        raise ValueError(f"no bounce-back rule for {num_channels} channels")
    size = 1 << num_channels
    table = np.zeros(size, dtype=np.uint16)
    for state in range(size):
        out = 0
        for ch in range(num_channels):
            if (state >> ch) & 1:
                out |= 1 << opposite[ch]
        table[state] = out
    return table


@dataclass(frozen=True)
class ObstacleMap:
    """A boolean mask of solid (bounce-back) sites.

    Composable: ``a | b`` unions two maps of equal shape.
    """

    mask: np.ndarray

    def __post_init__(self) -> None:
        mask = np.asarray(self.mask, dtype=bool)
        if mask.ndim != 2:
            raise ValueError("obstacle mask must be 2-D")
        object.__setattr__(self, "mask", mask)

    @classmethod
    def empty(cls, rows: int, cols: int) -> "ObstacleMap":
        return cls(np.zeros((rows, cols), dtype=bool))

    @property
    def shape(self) -> tuple[int, int]:
        return tuple(self.mask.shape)  # type: ignore[return-value]

    @property
    def num_solid(self) -> int:
        return int(self.mask.sum())

    def __or__(self, other: "ObstacleMap") -> "ObstacleMap":
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        return ObstacleMap(self.mask | other.mask)


@dataclass
class LatticeGasAutomaton:
    """Reference LGCA evolution: state + model + obstacles + RNG.

    Parameters
    ----------
    model:
        An :class:`repro.lgca.hpp.HPPModel` or :class:`repro.lgca.fhp.FHPModel`.
    state:
        Initial site-state field, shape ``(model.rows, model.cols)``.
    obstacles:
        Optional solid-site mask of the same shape.
    rng:
        Only consulted when the model's chirality policy is ``"random"``.
    """

    model: SiteModel
    state: np.ndarray
    obstacles: ObstacleMap | None = None
    rng: np.random.Generator | None = None
    time: int = 0
    _bounce: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.state = self.model.check_state(self.state).copy()
        self.time = check_nonnegative(self.time, "time", integer=True)
        if self.obstacles is not None and self.obstacles.shape != self.state.shape:
            raise ValueError(
                f"obstacle shape {self.obstacles.shape} != state shape {self.state.shape}"
            )
        self._bounce = bounce_back_table(self.model.num_channels)

    # -- observable shortcuts -------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.model.rows, self.model.cols)

    @property
    def num_sites(self) -> int:
        return self.model.rows * self.model.cols

    def particle_count(self) -> int:
        from repro.lgca.observables import total_mass

        return total_mass(self.state, self.model.num_channels)

    def momentum(self) -> np.ndarray:
        from repro.lgca.observables import total_momentum

        return total_momentum(self.state, self.model.velocities)

    # -- evolution ------------------------------------------------------------

    def _collide_with_obstacles(self, state: np.ndarray) -> np.ndarray:
        collided = self.model.collide(state, self.time, self.rng)
        if self.obstacles is None or self.obstacles.num_solid == 0:
            return collided
        bounced = self._bounce[state]
        return np.where(self.obstacles.mask, bounced, collided).astype(state.dtype)

    def step(self) -> np.ndarray:
        """Advance one generation; returns the new state (also stored)."""
        collided = self._collide_with_obstacles(self.state)
        self.state = self.model.propagate(collided)
        self.time += 1
        return self.state

    def run(self, generations: int) -> np.ndarray:
        """Advance ``generations`` steps; returns the final state."""
        generations = check_nonnegative(generations, "generations", integer=True)
        for _ in range(generations):
            self.step()
        return self.state

    def history(self, generations: int) -> np.ndarray:
        """Run and record: array of shape ``(generations + 1, rows, cols)``.

        Index 0 is the current state; index t is the state after t steps.
        """
        generations = check_nonnegative(generations, "generations", integer=True)
        out = np.empty((generations + 1,) + self.shape, dtype=self.state.dtype)
        out[0] = self.state
        for t in range(1, generations + 1):
            out[t] = self.step()
        return out

    def site_update_count(self, generations: int) -> int:
        """Number of site updates ``generations`` steps perform.

        This is the work unit of the paper's throughput measure R
        (site updates per second).
        """
        generations = check_nonnegative(generations, "generations", integer=True)
        return generations * self.num_sites
