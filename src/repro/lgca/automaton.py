"""The reference synchronous LGCA driver.

:class:`LatticeGasAutomaton` couples a model (HPP or FHP kernels), a
mutable state field, an optional obstacle map, and an RNG, and advances
the gas generation by generation.  **This is the golden reference** —
every engine simulator in :mod:`repro.engines` is required (by the
integration tests) to produce bit-identical evolutions to this class for
deterministic configurations.

Obstacles are realized as bounce-back sites: at an obstacle site the
collision step is replaced by velocity reversal (``i -> i + n/2``), the
standard no-slip body condition for lattice gases, which conserves mass
(momentum is deliberately exchanged with the body — that is what drag
*is*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.lgca.bits import bounce_back_table
from repro.util.validation import check_nonnegative

__all__ = ["LatticeGasAutomaton", "ObstacleMap", "bounce_back_table"]


class SiteModel(Protocol):
    """The kernel interface shared by HPPModel and FHPModel."""

    rows: int
    cols: int

    @property
    def num_channels(self) -> int: ...

    @property
    def bits_per_site(self) -> int: ...

    @property
    def velocities(self) -> np.ndarray: ...

    def check_state(self, state: np.ndarray) -> np.ndarray: ...

    def collide(
        self, state: np.ndarray, t: int = 0, rng: np.random.Generator | None = None
    ) -> np.ndarray: ...

    def propagate(self, state: np.ndarray) -> np.ndarray: ...


@dataclass(frozen=True)
class ObstacleMap:
    """A boolean mask of solid (bounce-back) sites.

    Composable: ``a | b`` unions two maps of equal shape.
    """

    mask: np.ndarray

    def __post_init__(self) -> None:
        mask = np.array(self.mask, dtype=bool)
        if mask.ndim != 2:
            raise ValueError("obstacle mask must be 2-D")
        mask.setflags(write=False)
        object.__setattr__(self, "mask", mask)
        # Computed once: the automaton consults it on every step, and a
        # frozen mask cannot change behind our back.
        object.__setattr__(self, "_num_solid", int(mask.sum()))

    @classmethod
    def empty(cls, rows: int, cols: int) -> "ObstacleMap":
        return cls(np.zeros((rows, cols), dtype=bool))

    @property
    def shape(self) -> tuple[int, int]:
        return tuple(self.mask.shape)  # type: ignore[return-value]

    @property
    def num_solid(self) -> int:
        return int(getattr(self, "_num_solid"))

    def __or__(self, other: "ObstacleMap") -> "ObstacleMap":
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        return ObstacleMap(self.mask | other.mask)


@dataclass
class LatticeGasAutomaton:
    """Reference LGCA evolution: state + model + obstacles + RNG.

    Parameters
    ----------
    model:
        An :class:`repro.lgca.hpp.HPPModel` or :class:`repro.lgca.fhp.FHPModel`.
    state:
        Initial site-state field, shape ``(model.rows, model.cols)``.
    obstacles:
        Optional solid-site mask of the same shape.
    rng:
        Only consulted when the model's chirality policy is ``"random"``.
    backend:
        Kernel backend name from :mod:`repro.lgca.backends`
        (``"reference"``, ``"bitplane"``, or ``"parallel"``).  All
        produce bit-identical evolutions; ``"bitplane"`` packs 64 sites
        per machine word and is much faster for :meth:`run` on large
        grids, and ``"parallel"`` tiles those kernels over a thread
        pool.
    workers:
        Per-backend worker count (``"parallel"`` only): a positive int
        or ``"auto"``.  ``None`` means "not requested"; setting it with
        a backend that does not accept it raises
        :class:`~repro.util.errors.ConfigError`.
    recorder:
        Optional :class:`~repro.telemetry.Recorder` forwarded to the
        backend stepper, which reports per-generation kernel (and, for
        ``"parallel"``, halo-exchange) timings through it.  Recording
        never changes the evolution — trajectories are bit-identical
        with any recorder (property-tested).
    """

    model: SiteModel
    state: np.ndarray
    obstacles: ObstacleMap | None = None
    rng: np.random.Generator | None = None
    time: int = 0
    backend: str = "reference"
    workers: int | str | None = None
    recorder: object = None
    _stepper: object = field(init=False, repr=False)

    def __post_init__(self) -> None:
        from repro.lgca.backends import make_stepper

        self.state = self.model.check_state(self.state).copy()
        self.time = check_nonnegative(self.time, "time", integer=True)
        if self.obstacles is not None and self.obstacles.shape != self.state.shape:
            raise ValueError(
                f"obstacle shape {self.obstacles.shape} != state shape {self.state.shape}"
            )
        self._stepper = make_stepper(
            self.model,
            obstacles=self.obstacles,
            backend=self.backend,
            workers=self.workers,
            recorder=self.recorder,  # type: ignore[arg-type]
        )

    # -- observable shortcuts -------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.model.rows, self.model.cols)

    @property
    def num_sites(self) -> int:
        return self.model.rows * self.model.cols

    def particle_count(self) -> int:
        from repro.lgca.observables import total_mass

        return total_mass(self.state, self.model.num_channels)

    def momentum(self) -> np.ndarray:
        from repro.lgca.observables import total_momentum

        return total_momentum(self.state, self.model.velocities)

    # -- evolution ------------------------------------------------------------

    def step(self) -> np.ndarray:
        """Advance one generation; returns the new state (also stored).

        Delegates to the selected backend's stepper; the returned array
        is a fresh copy, so callers may hold on to successive states.
        """
        from repro.lgca.backends import KernelStepper

        stepper = self._stepper
        assert isinstance(stepper, KernelStepper)
        self.state = stepper.step(self.state, self.time, self.rng).copy()
        self.time += 1
        return self.state

    def run(self, generations: int) -> np.ndarray:
        """Advance ``generations`` steps; returns the final state.

        This is the fast path: the backend stepper advances all
        generations with preallocated double buffers (zero allocation in
        steady state) and the result is copied back once at the end.
        """
        from repro.lgca.backends import KernelStepper

        generations = check_nonnegative(generations, "generations", integer=True)
        if generations == 0:
            return self.state
        stepper = self._stepper
        assert isinstance(stepper, KernelStepper)
        self.state = stepper.run(self.state, generations, self.time, self.rng).copy()
        self.time += generations
        return self.state

    def history(self, generations: int) -> np.ndarray:
        """Run and record: array of shape ``(generations + 1, rows, cols)``.

        Index 0 is the current state; index t is the state after t steps.
        """
        generations = check_nonnegative(generations, "generations", integer=True)
        out = np.empty((generations + 1,) + self.shape, dtype=self.state.dtype)
        out[0] = self.state
        for t in range(1, generations + 1):
            out[t] = self.step()
        return out

    def site_update_count(self, generations: int) -> int:
        """Number of site updates ``generations`` steps perform.

        This is the work unit of the paper's throughput measure R
        (site updates per second).
        """
        generations = check_nonnegative(generations, "generations", integer=True)
        return generations * self.num_sites
