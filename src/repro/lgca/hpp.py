"""The HPP lattice gas (Hardy, Pomeau, de Pazzis 1973) — reference [4].

Four unit-velocity channels on an orthogonal lattice.  The only
interaction is the head-on two-body collision: two particles meeting
nose-to-nose with the perpendicular pair empty scatter into the
perpendicular pair.  The paper notes this model "does not lead to
isotropic solutions" — benchmark E12 demonstrates exactly that by
propagating a density pulse and comparing against FHP.

Channel numbering (physical axes; the storage grid is matrix-indexed
with row increasing downward, so +y is row−1):

====  =========  ============
bit   velocity   (drow, dcol)
====  =========  ============
0     +x         (0, +1)
1     +y         (−1, 0)
2     −x         (0, −1)
3     −y         (+1, 0)
====  =========  ============
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lgca.bits import unpack_channels, pack_channels
from repro.lgca.collision import CollisionTable
from repro.util.validation import check_positive

__all__ = ["HPP_VELOCITIES", "HPP_OFFSETS", "hpp_collision_table", "HPPModel"]

#: (4, 2) physical velocity vectors (vx, vy) per channel.
HPP_VELOCITIES = np.array(
    [
        (1.0, 0.0),
        (0.0, 1.0),
        (-1.0, 0.0),
        (0.0, -1.0),
    ]
)

#: (4, 2) storage-grid offsets (drow, dcol) per channel.
HPP_OFFSETS = [(0, 1), (-1, 0), (0, -1), (1, 0)]

_HEAD_ON_X = 0b0101  # particles in +x and -x
_HEAD_ON_Y = 0b1010  # particles in +y and -y


def hpp_collision_table() -> CollisionTable:
    """The verified 16-entry HPP collision table.

    Exactly two states change: the x head-on pair becomes the y head-on
    pair and vice versa.  The rule is an involution.
    """
    table = np.arange(16, dtype=np.uint16)
    table[_HEAD_ON_X] = _HEAD_ON_Y
    table[_HEAD_ON_Y] = _HEAD_ON_X
    return CollisionTable(name="hpp", table=table, velocities=HPP_VELOCITIES)


@dataclass
class HPPModel:
    """Collision + propagation kernels for the HPP gas on a ``rows x cols`` grid.

    This class is *stateless with respect to the gas* — it transforms
    state fields.  :class:`repro.lgca.automaton.LatticeGasAutomaton`
    couples a model with a state, boundary, and obstacle map.

    Parameters
    ----------
    rows, cols:
        Grid shape.
    boundary:
        ``"periodic"`` (toroidal), ``"null"`` (particles leaving the edge
        vanish, none enter), or ``"reflecting"`` (bounce-back walls).
    """

    rows: int
    cols: int
    boundary: str = "periodic"

    def __post_init__(self) -> None:
        self.rows = check_positive(self.rows, "rows", integer=True)
        self.cols = check_positive(self.cols, "cols", integer=True)
        if self.boundary not in ("periodic", "null", "reflecting"):
            raise ValueError(
                f"boundary={self.boundary!r} must be periodic, null, or reflecting"
            )
        self._table = hpp_collision_table()

    # -- public metadata ----------------------------------------------------

    @property
    def num_channels(self) -> int:
        return 4

    @property
    def bits_per_site(self) -> int:
        """D of the paper's pin constraint for this model."""
        return 4

    @property
    def velocities(self) -> np.ndarray:
        return HPP_VELOCITIES.copy()

    @property
    def collision_table(self) -> CollisionTable:
        return self._table

    def check_state(self, state: np.ndarray) -> np.ndarray:
        state = np.asarray(state)
        if state.shape != (self.rows, self.cols):
            raise ValueError(
                f"state shape {state.shape} != grid shape {(self.rows, self.cols)}"
            )
        if state.max(initial=0) >= 16:
            raise ValueError("HPP states must fit in 4 bits")
        return state.astype(np.uint8, copy=False)

    # -- dynamics -----------------------------------------------------------

    def collide(
        self,
        state: np.ndarray,
        t: int = 0,
        rng: np.random.Generator | None = None,
        *,
        out: np.ndarray | None = None,
        check: bool = True,
    ) -> np.ndarray:
        """Apply the collision table at every site.

        ``t`` and ``rng`` are accepted for interface parity with
        :class:`repro.lgca.fhp.FHPModel`; HPP is deterministic.
        ``out`` (which must not alias ``state``) receives the result
        without allocating; ``check=False`` skips input validation when
        the caller has already validated (one ``step()`` validates once).
        """
        if check:
            state = self.check_state(state)
        result = self._table(state, out=out)
        assert isinstance(result, np.ndarray)
        return result

    def propagate(
        self,
        state: np.ndarray,
        *,
        out: np.ndarray | None = None,
        check: bool = True,
    ) -> np.ndarray:
        """Move every particle one lattice unit along its velocity.

        ``out`` (not aliasing ``state``) receives the packed result;
        channel-plane scratch is reused across calls, so steady-state
        stepping does not allocate.
        """
        if check:
            state = self.check_state(state)
        ch_in = unpack_channels(state, 4, out=self._scratch("ch_in"))
        ch_out = self._scratch("ch_out")
        for bit, (dr, dc) in enumerate(HPP_OFFSETS):
            _shift_plane_into(ch_in[bit], ch_out[bit], dr, dc, self.boundary)
        if self.boundary == "reflecting":
            _reflect_edges_square(ch_in, ch_out)
        if out is None:
            out = np.zeros_like(state)
        return pack_channels(ch_out, out=out, check=False)

    def step(
        self,
        state: np.ndarray,
        t: int = 0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """One generation: collide, then propagate (validates input once)."""
        state = self.check_state(state)
        return self.propagate(self.collide(state, t, rng, check=False), check=False)

    def _scratch(self, key: str) -> np.ndarray:
        """Lazily allocated per-model channel-plane scratch buffers."""
        buffers = getattr(self, "_scratch_buffers", None)
        if buffers is None:
            buffers = {}
            self._scratch_buffers: dict[str, np.ndarray] = buffers
        buf = buffers.get(key)
        if buf is None:
            buf = np.empty((4, self.rows, self.cols), dtype=np.uint8)
            buffers[key] = buf
        return buf


def _shift_plane_into(
    plane: np.ndarray, out: np.ndarray, dr: int, dc: int, boundary: str
) -> None:
    """Shift a 0/1 channel plane by (dr, dc) into ``out`` (no aliasing).

    For ``"reflecting"`` the plane is shifted with null semantics; the
    caller then re-injects reversed particles at the walls.  Implemented
    with slice assignment so no temporaries are allocated.
    """
    if dr != 0 and dc != 0:
        raise ValueError("only single-axis shifts are supported (HPP offsets)")
    rows, cols = plane.shape
    periodic = boundary == "periodic"
    if not periodic:
        out[...] = 0
    src_r = slice(max(0, -dr), rows - max(0, dr))
    dst_r = slice(max(0, dr), rows - max(0, -dr))
    src_c = slice(max(0, -dc), cols - max(0, dc))
    dst_c = slice(max(0, dc), cols - max(0, -dc))
    out[dst_r, dst_c] = plane[src_r, src_c]
    if periodic:
        # Wrap the rows/columns the block copy above left out.
        if dr > 0:
            out[:dr, dst_c] = plane[rows - dr :, src_c]
        elif dr < 0:
            out[dr:, dst_c] = plane[:-dr, src_c]
        if dc > 0:
            out[:, :dc] = plane[:, cols - dc :]
        elif dc < 0:
            out[:, dc:] = plane[:, :-dc]


def _reflect_edges_square(channels_in: np.ndarray, channels_out: np.ndarray) -> None:
    """Bounce-back at the four walls for HPP channel planes (in place).

    A particle that would cross a wall stays at its wall site with its
    velocity reversed — the standard no-slip wall for lattice gases.
    """
    # +x particles at the right wall come back as -x particles there.
    channels_out[2][:, -1] |= channels_in[0][:, -1]
    # -x at left wall -> +x.
    channels_out[0][:, 0] |= channels_in[2][:, 0]
    # +y (row-1) at top wall -> -y.
    channels_out[3][0, :] |= channels_in[1][0, :]
    # -y (row+1) at bottom wall -> +y.
    channels_out[1][-1, :] |= channels_in[3][-1, :]
