"""Packed bit encodings of lattice-gas site states.

A site of a lattice gas holds one bit per velocity channel (the paper's
exclusion principle: "no more than one particle can occupy a given
directed lattice edge"), plus optionally a rest-particle bit and flag
bits (obstacle, boundary).  The whole site state is ``D`` bits — the
``D`` of the pin constraint ``2D·P <= Π`` in section 6.

States are stored as small unsigned integers; fields of states are NumPy
integer arrays.  This module provides the popcount/channel machinery the
collision tables and observables are built from.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive

__all__ = [
    "popcount",
    "popcount_table",
    "direction_count",
    "pack_channels",
    "unpack_channels",
    "channel_bit",
    "has_particle",
    "opposite_channels",
    "bounce_back_table",
]

_POPCOUNT_CACHE: dict[int, np.ndarray] = {}
_BOUNCE_CACHE: dict[int, np.ndarray] = {}


def opposite_channels(num_channels: int) -> tuple[int, ...]:
    """Velocity-reversal channel map ``i -> opposite(i)``.

    For 6/7-channel FHP, channel ``i`` maps to ``(i + 3) % 6``; for
    4-channel HPP, to ``(i + 2) % 4``.  A rest particle (channel 6) maps
    to itself.
    """
    if num_channels == 4:
        return (2, 3, 0, 1)
    if num_channels == 6:
        return (3, 4, 5, 0, 1, 2)
    if num_channels == 7:
        return (3, 4, 5, 0, 1, 2, 6)
    raise ValueError(f"no bounce-back rule for {num_channels} channels")


def bounce_back_table(num_channels: int) -> np.ndarray:
    """Lookup table reversing every moving particle's velocity.

    The table conserves mass exactly.  Like :func:`popcount_table` it is
    built vectorized (one shift/or pass per channel instead of a
    pure-Python ``2^C`` loop) and cached read-only, since the automaton
    and the bit-plane backend both index it in hot paths.
    """
    table = _BOUNCE_CACHE.get(num_channels)
    if table is None:
        opposite = opposite_channels(num_channels)
        states = np.arange(1 << num_channels, dtype=np.uint16)
        table = np.zeros(states.size, dtype=np.uint16)
        for ch, opp in enumerate(opposite):
            table |= ((states >> np.uint16(ch)) & np.uint16(1)) << np.uint16(opp)
        table.setflags(write=False)
        _BOUNCE_CACHE[num_channels] = table
    return table


def popcount_table(num_bits: int) -> np.ndarray:
    """Lookup table: number of set bits for every state of ``num_bits`` bits.

    The table is cached — lattice-gas kernels index it with full state
    arrays (``table[state_field]``), which is the vectorized popcount.
    """
    num_bits = check_positive(num_bits, "num_bits", integer=True)
    if num_bits > 24:
        raise ValueError(f"num_bits={num_bits} too large for table-driven popcount")
    table = _POPCOUNT_CACHE.get(num_bits)
    if table is None:
        values = np.arange(1 << num_bits, dtype=np.uint32)
        table = np.zeros(1 << num_bits, dtype=np.uint8)
        for bit in range(num_bits):
            table += ((values >> bit) & 1).astype(np.uint8)
        table.setflags(write=False)
        _POPCOUNT_CACHE[num_bits] = table
    return table


def popcount(states: np.ndarray | int, num_bits: int) -> np.ndarray | int:
    """Number of particles at each site (vectorized popcount)."""
    table = popcount_table(num_bits)
    if np.isscalar(states):
        return int(table[int(states)])
    states = np.asarray(states)
    return table[states]


def direction_count(states: np.ndarray | int, direction: int) -> np.ndarray | int:
    """Occupancy (0/1) of velocity channel ``direction``."""
    if direction < 0:
        raise ValueError(f"direction={direction} must be non-negative")
    if np.isscalar(states):
        return (int(states) >> direction) & 1
    states = np.asarray(states)
    return (states >> np.uint8(direction)) & 1


def channel_bit(direction: int) -> int:
    """The mask with only channel ``direction`` set."""
    if direction < 0:
        raise ValueError(f"direction={direction} must be non-negative")
    return 1 << direction


def has_particle(state: int, direction: int) -> bool:
    """Whether ``state`` has a particle moving along ``direction``."""
    return bool((int(state) >> direction) & 1)


def pack_channels(
    channels: np.ndarray, out: np.ndarray | None = None, check: bool = True
) -> np.ndarray:
    """Pack per-channel boolean planes into an integer state field.

    Parameters
    ----------
    channels:
        Boolean/0-1 array of shape ``(num_channels, ...)``.
    out:
        Optional preallocated result array of the trailing shape (used by
        the zero-allocation stepping paths).
    check:
        Validate that non-boolean planes only hold 0/1 values.  Kernels
        whose planes are 0/1 by construction pass ``False``.

    Returns
    -------
    Integer array of the trailing shape, dtype uint8 for <= 8 channels,
    uint16 for <= 16.
    """
    channels = np.asarray(channels)
    if channels.ndim < 1:
        raise ValueError("channels must have a leading channel axis")
    num_channels = channels.shape[0]
    if num_channels == 0:
        raise ValueError("need at least one channel")
    if num_channels > 16:
        raise ValueError(f"{num_channels} channels exceed the 16-bit state limit")
    dtype = np.uint8 if num_channels <= 8 else np.uint16
    if out is None:
        out = np.zeros(channels.shape[1:], dtype=dtype)
    else:
        if out.shape != channels.shape[1:]:
            raise ValueError(f"out has shape {out.shape}, expected {channels.shape[1:]}")
        dtype = out.dtype.type
        out[...] = 0
    for bit in range(num_channels):
        plane = channels[bit]
        if check and plane.dtype != np.bool_:
            bad = (plane != 0) & (plane != 1)
            if np.any(bad):
                raise ValueError(f"channel {bit} has values outside {{0, 1}}")
        out |= (plane.astype(dtype, copy=False)) << dtype(bit)
    return out


def unpack_channels(
    states: np.ndarray, num_channels: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Inverse of :func:`pack_channels`: per-channel 0/1 planes.

    Returns an array of shape ``(num_channels,) + states.shape`` with
    dtype uint8 (written into ``out`` when given).
    """
    num_channels = check_positive(num_channels, "num_channels", integer=True)
    states = np.asarray(states)
    if out is None:
        out = np.empty((num_channels,) + states.shape, dtype=np.uint8)
    elif out.shape != (num_channels,) + states.shape:
        raise ValueError(
            f"out has shape {out.shape}, expected {(num_channels,) + states.shape}"
        )
    for bit in range(num_channels):
        np.right_shift(states, np.uint8(bit), out=out[bit], casting="unsafe")
        out[bit] &= np.uint8(1)
    return out
