"""Packed bit encodings of lattice-gas site states.

A site of a lattice gas holds one bit per velocity channel (the paper's
exclusion principle: "no more than one particle can occupy a given
directed lattice edge"), plus optionally a rest-particle bit and flag
bits (obstacle, boundary).  The whole site state is ``D`` bits — the
``D`` of the pin constraint ``2D·P <= Π`` in section 6.

States are stored as small unsigned integers; fields of states are NumPy
integer arrays.  This module provides the popcount/channel machinery the
collision tables and observables are built from.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive

__all__ = [
    "popcount",
    "popcount_table",
    "direction_count",
    "pack_channels",
    "unpack_channels",
    "channel_bit",
    "has_particle",
]

_POPCOUNT_CACHE: dict[int, np.ndarray] = {}


def popcount_table(num_bits: int) -> np.ndarray:
    """Lookup table: number of set bits for every state of ``num_bits`` bits.

    The table is cached — lattice-gas kernels index it with full state
    arrays (``table[state_field]``), which is the vectorized popcount.
    """
    num_bits = check_positive(num_bits, "num_bits", integer=True)
    if num_bits > 24:
        raise ValueError(f"num_bits={num_bits} too large for table-driven popcount")
    table = _POPCOUNT_CACHE.get(num_bits)
    if table is None:
        values = np.arange(1 << num_bits, dtype=np.uint32)
        table = np.zeros(1 << num_bits, dtype=np.uint8)
        for bit in range(num_bits):
            table += ((values >> bit) & 1).astype(np.uint8)
        table.setflags(write=False)
        _POPCOUNT_CACHE[num_bits] = table
    return table


def popcount(states: np.ndarray | int, num_bits: int) -> np.ndarray | int:
    """Number of particles at each site (vectorized popcount)."""
    table = popcount_table(num_bits)
    if np.isscalar(states):
        return int(table[int(states)])
    states = np.asarray(states)
    return table[states]


def direction_count(states: np.ndarray | int, direction: int) -> np.ndarray | int:
    """Occupancy (0/1) of velocity channel ``direction``."""
    if direction < 0:
        raise ValueError(f"direction={direction} must be non-negative")
    if np.isscalar(states):
        return (int(states) >> direction) & 1
    states = np.asarray(states)
    return (states >> np.uint8(direction)) & 1


def channel_bit(direction: int) -> int:
    """The mask with only channel ``direction`` set."""
    if direction < 0:
        raise ValueError(f"direction={direction} must be non-negative")
    return 1 << direction


def has_particle(state: int, direction: int) -> bool:
    """Whether ``state`` has a particle moving along ``direction``."""
    return bool((int(state) >> direction) & 1)


def pack_channels(channels: np.ndarray) -> np.ndarray:
    """Pack per-channel boolean planes into an integer state field.

    Parameters
    ----------
    channels:
        Boolean/0-1 array of shape ``(num_channels, ...)``.

    Returns
    -------
    Integer array of the trailing shape, dtype uint8 for <= 8 channels,
    uint16 for <= 16.
    """
    channels = np.asarray(channels)
    if channels.ndim < 1:
        raise ValueError("channels must have a leading channel axis")
    num_channels = channels.shape[0]
    if num_channels == 0:
        raise ValueError("need at least one channel")
    if num_channels > 16:
        raise ValueError(f"{num_channels} channels exceed the 16-bit state limit")
    dtype = np.uint8 if num_channels <= 8 else np.uint16
    out = np.zeros(channels.shape[1:], dtype=dtype)
    for bit in range(num_channels):
        plane = channels[bit]
        if plane.dtype != np.bool_:
            bad = (plane != 0) & (plane != 1)
            if np.any(bad):
                raise ValueError(f"channel {bit} has values outside {{0, 1}}")
        out |= (plane.astype(dtype)) << dtype(bit)
    return out


def unpack_channels(states: np.ndarray, num_channels: int) -> np.ndarray:
    """Inverse of :func:`pack_channels`: per-channel 0/1 planes.

    Returns an array of shape ``(num_channels,) + states.shape`` with
    dtype uint8.
    """
    num_channels = check_positive(num_channels, "num_channels", integer=True)
    states = np.asarray(states)
    out = np.empty((num_channels,) + states.shape, dtype=np.uint8)
    for bit in range(num_channels):
        out[bit] = (states >> np.uint8(bit)) & 1
    return out
