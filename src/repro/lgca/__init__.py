"""Lattice-gas cellular automata: the paper's paradigm workload (section 2).

The subpackage implements, from scratch, the cellular-automaton models the
paper builds its engines for:

* :mod:`repro.lgca.bits` — packed bit encodings of site states (``D`` bits
  per site, the quantity the pin-constraint ``2D·P <= Π`` charges for).
* :mod:`repro.lgca.collision` — collision-rule tables with machine-checked
  mass and momentum conservation (the "physically plausible laws" of
  section 2).
* :mod:`repro.lgca.hpp` — the HPP model [Hardy, Pomeau, de Pazzis 1973]:
  4-velocity orthogonal lattice gas (anisotropic).
* :mod:`repro.lgca.fhp` — the FHP model [Frisch, Hasslacher, Pomeau 1986]:
  6-velocity hexagonal gas (FHP-I) and the 7-bit variant with a rest
  particle, which satisfy Navier–Stokes in the macroscopic limit.
* :mod:`repro.lgca.automaton` — the reference synchronous driver every
  engine simulator is verified against, with obstacles and boundaries.
* :mod:`repro.lgca.bitplane` — multi-spin coded kernels (64 sites per
  ``uint64`` word) with collision logic compiled from the verified tables.
* :mod:`repro.lgca.backends` — the kernel-backend registry through which
  the automaton, the engine simulators, and the CLI select ``reference``
  or ``bitplane`` stepping uniformly.
* :mod:`repro.lgca.observables` — coarse-grained density/momentum fields
  and the Reynolds-number scaling helpers of reference [10].
* :mod:`repro.lgca.flows` — initial conditions (uniform, shear, channel,
  cylinder wake) used by examples and benches.
* :mod:`repro.lgca.wolfram` — 1-D binary cellular automata, the workload
  of the Steiglitz–Morita one-dimensional pipeline chip (reference [16]).
* :mod:`repro.lgca.ndim` — d-dimensional orthogonal gases (the paper's
  "extensions to three-dimensional gases" remark, any d).
* :mod:`repro.lgca.diagnostics` — kinetic measurements: collision rate,
  shear viscosity by wave decay, sound speed by standing-wave
  dispersion, each compared against Boltzmann theory.
"""

from repro.lgca.bits import (
    popcount,
    direction_count,
    pack_channels,
    unpack_channels,
)
from repro.lgca.collision import (
    CollisionTable,
    ConservationError,
    verify_conservation,
)
from repro.lgca.hpp import HPPModel, hpp_collision_table
from repro.lgca.fhp import (
    FHPModel,
    fhp6_collision_tables,
    fhp7_collision_tables,
    fhp_saturated_tables,
)
from repro.lgca.diagnostics import (
    collision_rate,
    channel_occupation,
    measure_shear_viscosity,
    ViscosityMeasurement,
    measure_sound_speed,
    SoundSpeedMeasurement,
)
from repro.lgca.ndim import NDHPPModel, ndhpp_collision_table, ndhpp_velocities
from repro.lgca.automaton import LatticeGasAutomaton, ObstacleMap
from repro.lgca.backends import (
    Backend,
    KernelStepper,
    available_backends,
    get_backend,
    make_stepper,
    register_backend,
)
from repro.lgca.bitplane import BitplaneKernel, pack_state, unpack_state
from repro.lgca.observables import (
    density_field,
    momentum_field,
    total_mass,
    total_momentum,
    coarse_grain,
    mean_velocity_field,
    reynolds_number,
)
from repro.lgca.flows import (
    uniform_random_state,
    shear_flow_state,
    channel_flow_state,
    density_pulse_state,
    cylinder_obstacle,
    plate_obstacle,
)
from repro.lgca.wolfram import ElementaryCA, ParityCA

__all__ = [
    "popcount",
    "direction_count",
    "pack_channels",
    "unpack_channels",
    "CollisionTable",
    "ConservationError",
    "verify_conservation",
    "HPPModel",
    "hpp_collision_table",
    "FHPModel",
    "fhp6_collision_tables",
    "fhp7_collision_tables",
    "fhp_saturated_tables",
    "collision_rate",
    "channel_occupation",
    "measure_shear_viscosity",
    "ViscosityMeasurement",
    "measure_sound_speed",
    "SoundSpeedMeasurement",
    "NDHPPModel",
    "ndhpp_collision_table",
    "ndhpp_velocities",
    "LatticeGasAutomaton",
    "ObstacleMap",
    "Backend",
    "KernelStepper",
    "available_backends",
    "get_backend",
    "make_stepper",
    "register_backend",
    "BitplaneKernel",
    "pack_state",
    "unpack_state",
    "density_field",
    "momentum_field",
    "total_mass",
    "total_momentum",
    "coarse_grain",
    "mean_velocity_field",
    "reynolds_number",
    "uniform_random_state",
    "shear_flow_state",
    "channel_flow_state",
    "density_pulse_state",
    "cylinder_obstacle",
    "plate_obstacle",
    "ElementaryCA",
    "ParityCA",
]
