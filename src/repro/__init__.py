"""repro — reproduction of Kugelmass, Squier & Steiglitz,
"Performance of VLSI Engines for Lattice Computations" (ICPP 1987 /
Complex Systems 1:939-965).

Subpackages
-----------
core
    The paper's contribution: engine design models (WSA, SPA, WSA-E),
    the section 6.3 comparisons, the section 8 prototype throughput
    model, and the architecture-facing I/O bound R = O(B*S^(1/d)).
lattice
    Geometry substrate: orthogonal and hexagonal lattices, stream
    embeddings and the span theorem, boundary conditions.
lgca
    Lattice-gas cellular automata: HPP, FHP-I, FHP-II, the reference
    automaton, observables, flows, and 1-D CAs.
engines
    Cycle-level simulators of the serial pipeline, wide-serial,
    Sternberg partitioned, and extensible (WSA-E) architectures on a
    shared streaming core, with bandwidth accounting.
machines
    The machine registry: each architecture's design model, simulator,
    and capability flags behind one name (``machines.create``,
    ``machines.specs``).
pebbling
    Red-blue and parallel-red-blue pebble games, computation graphs,
    S-I/O-divisions, 2S-partitions, line-time machinery, constructive
    schedules, and the section 7 lower bounds.
"""

__version__ = "1.0.0"
