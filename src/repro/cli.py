"""Command-line interface: ``python -m repro <command>``.

Commands
--------
design
    Print the optimal WSA/SPA operating points for a chip technology.
compare
    The section 6.3 architecture comparison at a given lattice size.
simulate
    Run a lattice gas (optionally through an engine simulator) and
    report conservation and machine stats.
bounds
    Evaluate the R = O(B·S^{1/d}) ceiling and its inversions.
machines
    The 1987 machine comparison (Connection Machine, CRAY X-MP, ...).
viscosity
    Measure FHP shear viscosity by wave decay and compare to Boltzmann.
lint
    Run the repo's static design-rule checker (RPR001...) over sources.
sanitize
    Run the physics sanitizer: exhaustive collision-table conservation,
    pebble-game legality, and design-formula cross-checks.
faults
    Run the seeded fault-injection campaign (kind × location sweep)
    and classify every trial; exits 1 if any monitored trial suffers
    silent data corruption.
run
    Evolve a lattice gas directly, or — with ``--supervised`` — sharded
    across worker processes under the watchdog/checkpoint-restart
    supervisor, with distinct exit codes: 0 complete, 3 degraded
    (shards dropped), 1 failed or (with ``--verify``) not bit-identical
    to the unsupervised run.
telemetry
    Inspect telemetry reports written by ``simulate``/``run``/``faults``
    ``--telemetry PATH``: ``summarize`` prints a digest of counters,
    timers, spans, and events (``--json`` for a machine-readable one),
    ``trace`` exports Chrome trace-event JSON for chrome://tracing or
    Perfetto, and ``diff`` compares two telemetry/bench reports and
    exits nonzero on perf regressions past a threshold.

Every command prints the same fixed-width tables the benchmark harness
writes, so CLI output can be diffed against ``benchmarks/out/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.util.errors import ReproError

__all__ = ["main", "build_parser"]


def _technology_from_args(args: argparse.Namespace):
    from repro.core.technology import ChipTechnology

    return ChipTechnology(
        bits_per_site=args.bits,
        pins=args.pins,
        site_area=args.site_area,
        pe_area=args.pe_area,
        boundary_bits=args.boundary_bits,
        clock_hz=args.clock_mhz * 1e6,
    )


def _telemetry_recorder(args: argparse.Namespace):
    """An :class:`InMemoryRecorder` when ``--telemetry`` was given, else None."""
    if getattr(args, "telemetry", None) is None:
        return None
    from repro.telemetry import InMemoryRecorder

    return InMemoryRecorder()


def _write_telemetry(
    args: argparse.Namespace, recorder, report=None, **meta: object
) -> None:
    """Snapshot ``recorder`` to the ``--telemetry`` path (no-op when off).

    When ``report`` is given (a pre-merged multi-process
    :class:`TelemetryReport` from the supervisor), it is stamped with the
    command metadata and written as-is instead of snapshotting the
    coordinator recorder alone.
    """
    if recorder is None:
        return
    from repro.telemetry import TelemetryReport

    if report is None:
        report = TelemetryReport.from_recorder(
            recorder, meta={"command": args.command, **meta}
        )
    else:
        report.meta.update({"command": args.command, **meta})
    report.write_json(args.telemetry)
    print(f"telemetry: wrote {args.telemetry}", file=sys.stderr)


def _add_telemetry_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="record counters/timers/spans/events and write a "
        "schema-versioned telemetry report (JSON) to PATH",
    )


def _add_technology_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("chip technology (defaults: the paper's 3µ CMOS)")
    group.add_argument("--bits", type=int, default=8, help="D, bits per site")
    group.add_argument("--pins", type=int, default=72, help="Π, usable I/O pins")
    group.add_argument(
        "--site-area", type=float, default=576e-6, help="B, normalized site area"
    )
    group.add_argument(
        "--pe-area", type=float, default=19.4e-3, help="Γ, normalized PE area"
    )
    group.add_argument(
        "--boundary-bits", type=int, default=3, help="E, slice-boundary bits"
    )
    group.add_argument("--clock-mhz", type=float, default=10.0, help="F in MHz")


def _cmd_design(args: argparse.Namespace) -> int:
    from repro.core.spa import SPAModel
    from repro.core.wsa import WSAModel
    from repro.util.tables import Table, format_rate

    tech = _technology_from_args(args)
    table = Table("Optimal engine designs", ["quantity", "WSA", "SPA"])
    wsa = WSAModel(tech).optimal_design()
    spa = SPAModel(tech).optimal_design(
        lattice_size=args.lattice_size or wsa.lattice_size
    )
    table.add_row("PEs per chip", wsa.pes_per_chip, spa.pes_per_chip)
    table.add_row("lattice size L", wsa.lattice_size, spa.lattice_size)
    table.add_row(
        "geometry",
        f"{wsa.pes_per_chip} lanes",
        f"P_w={spa.pes_wide}, P_k={spa.pes_deep}, W={spa.slice_width}",
    )
    table.add_row("pins used", wsa.pins_used, spa.pins_used)
    table.add_row(
        "chip area used", f"{wsa.chip_area_used:.4f}", f"{spa.chip_area_used:.4f}"
    )
    table.add_row(
        "bits/tick to memory",
        wsa.main_memory_bandwidth_bits_per_tick,
        f"{spa.main_memory_bandwidth_bits_per_tick:.0f}",
    )
    table.add_row(
        "updates/s per chip",
        format_rate(wsa.updates_per_chip_per_second),
        format_rate(spa.throughput_per_chip),
    )
    table.print()
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.core.comparison import compare_extensible, summarize_architectures
    from repro.core.technology import PAPER_TECHNOLOGY
    from repro.util.tables import Table

    rows = summarize_architectures(lattice_size=args.lattice_size)
    table = Table(
        f"Architecture comparison (L = {args.lattice_size or 785})",
        ["arch", "PEs/chip", "bits/tick", "storage/PE (B units)", "extensible"],
    )
    for r in rows:
        table.add_row(
            r.name,
            f"{r.pes_per_chip:.0f}",
            f"{r.bandwidth_bits_per_tick:.0f}",
            f"{r.storage_area_per_pe / PAPER_TECHNOLOGY.B:.1f}",
            r.extensible,
        )
    table.print()
    comp = compare_extensible(args.lattice_size or 1000)
    print(
        f"SPA vs WSA-E: {comp.speedup_spa_over_wsa_e:.0f}x faster per chip, "
        f"{1 / comp.bandwidth_ratio_wsa_e_over_spa:.1f}x the bandwidth."
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro import machines
    from repro.lgca.automaton import LatticeGasAutomaton
    from repro.lgca.fhp import FHPModel
    from repro.lgca.flows import uniform_random_state
    from repro.lgca.hpp import HPPModel
    from repro.util.tables import Table, format_rate

    rng = np.random.default_rng(args.seed)
    boundary = "null" if args.engine != "none" else args.boundary
    if args.model == "hpp":
        model = HPPModel(args.rows, args.cols, boundary=boundary)
    else:
        model = FHPModel(
            args.rows,
            args.cols,
            rest_particles=args.model in ("fhp7", "fhp-sat"),
            saturated=args.model == "fhp-sat",
            boundary=boundary,
        )
    state = uniform_random_state(
        args.rows, args.cols, model.num_channels, args.density, rng
    )
    recorder = _telemetry_recorder(args)
    # With an engine selected the automaton is only the bit-exactness
    # reference, so the recorder attaches to the engine run instead.
    auto = LatticeGasAutomaton(
        model,
        state.copy(),
        backend=args.backend,
        workers=args.workers,
        recorder=recorder if args.engine == "none" else None,
    )
    mass0, p0 = auto.particle_count(), auto.momentum()

    if args.engine == "none":
        auto.run(args.steps)
        table = Table("Simulation", ["quantity", "value"])
        table.add_row("model", args.model)
        table.add_row("grid", f"{args.rows} x {args.cols} ({args.boundary})")
        table.add_row("steps", args.steps)
        table.add_row("mass (t=0 -> end)", f"{mass0} -> {auto.particle_count()}")
        table.add_row(
            "momentum drift",
            f"{np.abs(auto.momentum() - p0).max():.2e}",
        )
        table.print()
        _write_telemetry(
            args,
            recorder,
            model=args.model,
            rows=args.rows,
            cols=args.cols,
            steps=args.steps,
            backend=args.backend,
            engine="none",
        )
        return 0

    machine_params: dict[str, dict[str, object]] = {
        "wsa": {"lanes": args.lanes},
        "spa": {"slice_width": args.slice_width},
    }
    engine = machines.create(
        args.engine,
        model,
        pipeline_depth=args.depth,
        backend=args.backend,
        workers=args.workers,
        recorder=recorder,
        **machine_params.get(args.engine, {}),
    )
    auto.run(args.steps)
    out, stats = engine.run(state, args.steps)
    match = bool(np.array_equal(out, auto.state))
    table = Table(f"Engine simulation: {stats.name}", ["quantity", "value"])
    table.add_row("matches reference", "bit-exact" if match else "MISMATCH")
    table.add_row("site updates", stats.site_updates)
    table.add_row("ticks", stats.ticks)
    table.add_row("updates/tick", f"{stats.updates_per_tick:.2f}")
    table.add_row("rate at clock", format_rate(stats.updates_per_second))
    table.add_row(
        "memory bits/tick", f"{stats.main_bandwidth_bits_per_tick:.1f}"
    )
    table.print()
    _write_telemetry(
        args,
        recorder,
        model=args.model,
        rows=args.rows,
        cols=args.cols,
        steps=args.steps,
        backend=args.backend,
        engine=args.engine,
    )
    return 0 if match else 1


def _cmd_bounds(args: argparse.Namespace) -> int:
    from repro.core.bounds import (
        bandwidth_for_target_rate,
        storage_for_target_rate,
        update_rate_upper_bound,
    )
    from repro.util.tables import Table, format_rate

    table = Table(
        f"R = O(B·S^(1/d)) at d={args.dimension}", ["quantity", "value"]
    )
    ceiling = update_rate_upper_bound(args.bandwidth, args.storage, args.dimension)
    table.add_row("bandwidth B", f"{args.bandwidth:.3g} site values/s")
    table.add_row("storage S", f"{args.storage:.3g} site values")
    table.add_row("rate ceiling", format_rate(ceiling))
    if args.target_rate:
        table.add_row(
            f"S needed for R={args.target_rate:.3g}",
            f"{storage_for_target_rate(args.target_rate, args.bandwidth, args.dimension):.4g}",
        )
        table.add_row(
            f"B needed for R={args.target_rate:.3g}",
            f"{bandwidth_for_target_rate(args.target_rate, args.storage, args.dimension):.4g}",
        )
    table.print()
    return 0


def _cmd_machines(args: argparse.Namespace) -> int:
    from repro.core.machines import machine_comparison_rows
    from repro.util.tables import Table, format_rate

    rows = machine_comparison_rows(args.dimension)
    table = Table(
        f"1987 machines on {args.dimension}-D lattice updates",
        ["machine", "peak", "realized", "balance", "reuse needed"],
    )
    for r in rows:
        table.add_row(
            r["name"],
            format_rate(r["compute_rate"]),
            format_rate(r["realized"]),
            f"{r['balance']:.0%}",
            f"{r['required_reuse']:.1f}",
        )
    table.print()
    return 0


def _cmd_machines_list(args: argparse.Namespace) -> int:
    import json

    from repro import machines
    from repro.util.tables import Table

    if args.json:
        payload = {
            "schema": machines.SCHEMA_NAME,
            "version": machines.SCHEMA_VERSION,
            "machines": [spec.describe() for spec in machines.specs()],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    table = Table(
        "Registered machines",
        ["name", "architecture", "engine", "backends", "tickwise", "section"],
    )
    for spec in machines.specs():
        caps = spec.capabilities
        table.add_row(
            spec.name,
            spec.title,
            spec.engine_cls.__name__,
            ",".join(caps.backends),
            "yes" if caps.tickwise else "no",
            spec.paper_section,
        )
    table.print()
    return 0


def _cmd_machines_describe(args: argparse.Namespace) -> int:
    import json

    from repro import machines
    from repro.util.tables import Table

    spec = machines.get(args.name)
    payload = spec.describe(lattice_size=args.lattice_size)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    table = Table(f"Machine: {spec.name}", ["quantity", "value"])
    table.add_row("architecture", spec.title)
    table.add_row("paper section", spec.paper_section)
    table.add_row("engine", spec.engine_cls.__name__)
    caps = spec.capabilities
    table.add_row("backends", ", ".join(caps.backends))
    table.add_row("fault hooks", "yes" if caps.fault_hooks else "no")
    table.add_row("tickwise", "yes" if caps.tickwise else "no")
    table.add_row("side channel", "yes" if caps.side_channel else "no")
    table.add_row("degradable", "yes" if caps.degradable else "no")
    table.add_row("parameters", ", ".join(spec.parameters))
    design = payload["design"]
    assert isinstance(design, dict)
    for key in sorted(design):
        value = design[key]
        if isinstance(value, float):
            table.add_row(f"design: {key}", f"{value:.6g}")
        else:
            table.add_row(f"design: {key}", str(value))
    table.print()
    return 0


def _cmd_regimes(args: argparse.Namespace) -> int:
    from repro.core.regimes import regime_map
    from repro.util.tables import Table

    lattice_sizes = [100, 400, 785, 1000, 2000, 4000]
    chip_budgets = [1, 10, 100, 1000]
    budget = args.bandwidth_budget
    points = regime_map(
        lattice_sizes, chip_budgets, bandwidth_budget_bits_per_tick=budget
    )
    label = "unconstrained" if budget is None else f"{budget:g} bits/tick"
    table = Table(
        f"Winning architecture (memory budget: {label})",
        ["L \\ N"] + [str(n) for n in chip_budgets],
    )
    for lattice_size in lattice_sizes:
        row = [p.winner for p in points if p.lattice_size == lattice_size]
        table.add_row(lattice_size, *row)
    table.print()
    return 0


def _cmd_pebble(args: argparse.Namespace) -> int:
    from repro.lattice.geometry import OrthogonalLattice
    from repro.pebbling.bounds import io_per_update_lower_bound
    from repro.pebbling.graph import ComputationGraph
    from repro.pebbling.schedules import (
        lru_cache_schedule,
        measure_schedule,
        per_site_schedule,
        row_cache_schedule,
        row_cache_storage_needed,
        trapezoid_schedule,
        trapezoid_storage_needed,
    )
    from repro.util.tables import Table

    graph = ComputationGraph(
        OrthogonalLattice.cube(args.dimension, args.side),
        generations=args.generations,
    )
    table = Table(
        f"Pebbling schedules on C_{args.dimension}"
        f"({args.side}^{args.dimension} sites, T={args.generations})",
        ["schedule", "S used", "I/O per update", "bound floor at S"],
    )
    reports = [
        measure_schedule(graph, per_site_schedule(graph), 2 * args.dimension + 2, "per-site"),
    ]
    for depth in (1, min(4, args.generations)):
        reports.append(
            measure_schedule(
                graph,
                row_cache_schedule(graph, depth),
                row_cache_storage_needed(graph, depth),
                f"pipeline k={depth}",
            )
        )
    base = max(2, args.side // 4)
    height = min(args.generations, max(1, base // 2))
    reports.append(
        measure_schedule(
            graph,
            trapezoid_schedule(graph, base, height),
            trapezoid_storage_needed(graph, base, height),
            f"trapezoid b={base},h={height}",
        )
    )
    lru_s = max(2 * args.dimension + 2, args.cache)
    reports.append(
        measure_schedule(graph, lru_cache_schedule(graph, lru_s), lru_s, f"LRU cache S={lru_s}")
    )
    for rep in reports:
        floor = io_per_update_lower_bound(graph, rep.max_red)
        table.add_row(rep.name, rep.max_red, f"{rep.io_per_update:.4f}", f"{floor:.5f}")
    table.print()
    return 0


def _cmd_viscosity(args: argparse.Namespace) -> int:
    from repro.lgca.diagnostics import measure_shear_viscosity
    from repro.lgca.fhp import FHPModel
    from repro.util.tables import Table

    model = FHPModel(
        args.size,
        args.size,
        rest_particles=args.model in ("fhp7", "fhp-sat"),
        saturated=args.model == "fhp-sat",
        chirality="alternate",
    )
    res = measure_shear_viscosity(
        model, args.density, args.amplitude, args.steps, np.random.default_rng(args.seed)
    )
    table = Table("Shear-viscosity measurement", ["quantity", "value"])
    table.add_row("model", args.model)
    table.add_row("measured ν", f"{res.measured:.4f}")
    table.add_row("Boltzmann ν(d)", f"{res.predicted:.4f}")
    table.add_row("relative error", f"{res.relative_error:.1%}")
    table.add_row("fit R²", f"{res.r_squared:.4f}")
    table.print()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.baseline import (
        baseline_from_diagnostics,
        load_baseline,
        save_baseline,
    )
    from repro.analysis.engine import lint_paths
    from repro.analysis.rules import ALL_RULES

    if args.list_rules:
        for rule in ALL_RULES:
            scope = ", ".join(rule.scopes) if rule.scopes else "all files"
            print(f"{rule.id}  [{rule.severity}]  {rule.title}  ({scope})")
        return 0
    if args.explain:
        for rule in ALL_RULES:
            if rule.id == args.explain:
                print(f"{rule.id}: {rule.title}")
                print()
                print(rule.explanation or "(no extended explanation)")
                return 0
        known = ", ".join(r.id for r in ALL_RULES)
        print(
            f"repro lint: unknown rule {args.explain!r}; known: {known}",
            file=sys.stderr,
        )
        return 2
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    cache = Path(args.project_cache) if args.project_cache else None
    try:
        report = lint_paths(
            args.paths, select=select, ignore=ignore, project_cache=cache
        )
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    baseline_path = Path(args.baseline)
    if args.write_baseline:
        save_baseline(baseline_path, baseline_from_diagnostics(report.diagnostics))
        print(
            f"repro lint: wrote {baseline_path} "
            f"({len(report.diagnostics)} finding(s) recorded)"
        )
        return 0
    if args.format == "json":
        print(report.format_json())
    elif args.format == "github":
        output = report.format_github()
        if output:
            print(output)
    else:
        print(report.format_text())
    if not args.strict:
        return report.exit_code
    try:
        baseline = load_baseline(baseline_path)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    fresh = baseline.fresh_findings(report.diagnostics)
    stale = baseline.stale_entries(report.diagnostics)
    for d in fresh:
        print(f"strict: not in baseline: {d.format()}", file=sys.stderr)
    for entry in stale:
        print(
            f"strict: stale baseline entry {entry.rule} for {entry.path} — "
            "the finding is gone; remove it from the baseline",
            file=sys.stderr,
        )
    if fresh or stale:
        print(
            f"repro lint --strict: {len(fresh)} new finding(s), "
            f"{len(stale)} stale baseline entr(y/ies)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.analysis.sanitizer import (
        available_checks,
        format_results_json,
        run_checks,
    )
    from repro.util.tables import Table

    if args.list_checks:
        for name in available_checks():
            print(name)
        return 0
    try:
        results = run_checks(args.check or None)
    except ValueError as exc:
        print(f"repro sanitize: {exc}", file=sys.stderr)
        return 2
    failed = [r for r in results if not r.passed]
    if args.format == "json":
        print(format_results_json(results))
    else:
        table = Table("Physics sanitizer", ["check", "status", "detail"])
        for r in results:
            table.add_row(r.name, r.status, r.detail)
        table.print()
        print(
            f"{len(results) - len(failed)}/{len(results)} checks passed"
            + ("" if not failed else f"; FAILED: {', '.join(r.name for r in failed)}")
        )
    return 1 if failed else 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.lgca.backends import check_backend_options
    from repro.resilience.campaign import (
        CampaignConfig,
        render_report,
        report_json,
        run_campaign,
    )
    from repro.util.errors import ConfigError

    # Same option validation as every other layer, so `--workers` with a
    # non-parallel backend fails with the registry's uniform message.
    check_backend_options(args.backend, {"workers": args.workers})
    if args.backend != "reference":
        raise ConfigError(
            "the fault-injection campaign mutates values inside the site "
            "stream and requires backend='reference'"
        )

    config = CampaignConfig(
        seed=args.seed,
        rows=args.rows,
        cols=args.cols,
        generations=args.generations,
        checkpoint_interval=args.checkpoint_interval,
        monitors=not args.no_monitors,
        trial_timeout_seconds=args.trial_timeout,
    )
    recorder = _telemetry_recorder(args)
    report = run_campaign(config, recorder=recorder)
    if args.format == "json":
        print(report_json(report), end="")
    else:
        print(render_report(report), end="")
    _write_telemetry(
        args,
        recorder,
        seed=args.seed,
        rows=args.rows,
        cols=args.cols,
        generations=args.generations,
        monitors=config.monitors,
    )
    sdc = report["summary"]["silent-data-corruption"]
    return 1 if (config.monitors and sdc) else 0


def _parse_induce(token: str):
    """Parse an ``--induce`` spec: ``KIND:WORKER@GEN[:key=value...]``.

    ``KIND`` is ``kill`` (alias ``crash``), ``stall``, or
    ``backend-error``; optional ``key=value`` suffixes are ``backend=``
    (only fire on that backend), ``lives=`` (fire for the first N
    incarnations), and ``seconds=`` (stall duration).
    """
    from repro.runtime import InducedFault
    from repro.util.errors import ConfigError

    parts = token.split(":")
    if len(parts) < 2 or "@" not in parts[1]:
        raise ConfigError(
            f"bad --induce spec {token!r}; expected KIND:WORKER@GEN[:key=value...]"
        )
    kind = {"kill": "crash"}.get(parts[0], parts[0])
    worker_s, _, gen_s = parts[1].partition("@")
    extras: dict[str, object] = {}
    for part in parts[2:]:
        key, _, value = part.partition("=")
        if key == "backend":
            extras["backend"] = value
        elif key == "lives":
            extras["incarnations"] = int(value)
        elif key == "seconds":
            extras["seconds"] = float(value)
        else:
            raise ConfigError(f"bad --induce option {part!r} in {token!r}")
    try:
        return InducedFault(
            worker=int(worker_s), generation=int(gen_s), kind=kind, **extras
        )
    except ValueError as exc:
        raise ConfigError(f"bad --induce spec {token!r}: {exc}") from exc


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    from repro.lgca.automaton import LatticeGasAutomaton
    from repro.runtime import ModelSpec, SupervisorConfig, supervised_run
    from repro.util.backoff import BackoffPolicy
    from repro.util.tables import Table

    spec = ModelSpec(
        kind=args.model,
        rows=args.rows,
        cols=args.cols,
        boundary=args.boundary,
    )

    recorder = _telemetry_recorder(args)

    def run_direct(workers: int | str | None = None, rec=None) -> np.ndarray:
        auto = LatticeGasAutomaton(
            spec.build(),
            spec.initial_state(args.density, args.seed),
            backend=args.backend,
            workers=workers,
            recorder=rec,
        )
        auto.run(args.generations)
        return auto.state.copy()

    if not args.supervised:
        state = run_direct(args.workers, recorder)
        table = Table("Direct run", ["quantity", "value"])
        table.add_row("model", args.model)
        table.add_row("grid", f"{args.rows} x {args.cols} ({args.boundary})")
        table.add_row("generations", args.generations)
        table.add_row("backend", args.backend)
        table.add_row("final particles", int(np.unpackbits(state).sum()))
        table.print()
        _write_telemetry(
            args,
            recorder,
            model=args.model,
            rows=args.rows,
            cols=args.cols,
            generations=args.generations,
            backend=args.backend,
            supervised=False,
        )
        return 0

    from repro.util.errors import ConfigError

    workers_arg = "2" if args.workers is None else str(args.workers)
    if not workers_arg.isdigit():
        raise ConfigError(
            f"supervised runs take an integer --workers process count; "
            f"got {workers_arg!r}"
        )
    num_workers = int(workers_arg)
    config = SupervisorConfig(
        spec=spec,
        generations=args.generations,
        num_workers=num_workers,
        backend=args.backend,
        fallback_backend=args.fallback_backend,
        density=args.density,
        seed=args.seed,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
        watchdog_timeout=args.watchdog_timeout,
        backoff=BackoffPolicy(
            max_retries=args.max_worker_restarts,
            base_delay=args.restart_delay,
            multiplier=2.0,
            max_delay=max(args.restart_delay, 2.0),
            jitter=0.1,
        ),
        max_total_restarts=args.max_restarts,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        deadline_seconds=args.deadline,
        allow_degraded=args.allow_degraded,
        induced=tuple(_parse_induce(t) for t in (args.induce or [])),
    )
    state, report = supervised_run(config, recorder=recorder)
    exit_code = report.exit_code
    bit_identical: bool | None = None
    if args.verify and state is not None and report.outcome == "complete":
        bit_identical = bool(np.array_equal(state, run_direct()))
        if not bit_identical:
            exit_code = 1
    # The supervisor hands back a merged multi-process report (worker
    # spools + coordinator, clock-aligned); fall back to the coordinator
    # snapshot if the merge was unavailable.
    _write_telemetry(
        args,
        recorder,
        report=report.telemetry,
        model=args.model,
        rows=args.rows,
        cols=args.cols,
        generations=args.generations,
        backend=args.backend,
        supervised=True,
        outcome=report.outcome,
    )
    if args.format == "json":
        payload = report.to_dict()
        payload["bit_identical"] = bit_identical
        payload["exit_code"] = exit_code
        print(json.dumps(payload, indent=2, sort_keys=True))
        return exit_code
    table = Table("Supervised run", ["quantity", "value"])
    table.add_row("model", args.model)
    table.add_row("grid", f"{args.rows} x {args.cols} ({args.boundary})")
    table.add_row("generations", f"{report.generations_completed}/{report.generations}")
    table.add_row("workers", num_workers)
    table.add_row("backend", f"{args.backend} (fallback: {args.fallback_backend})")
    table.add_row("outcome", report.outcome)
    table.add_row("reason", report.reason)
    table.add_row("restarts", len(report.restarts))
    table.add_row("watchdog kills", report.watchdog_kills)
    if report.breaker is not None:
        trips = len(report.breaker["transitions"])  # type: ignore[arg-type]
        table.add_row("breaker", f"{report.breaker['state']} ({trips} transition(s))")
    if report.degraded_shards:
        table.add_row(
            "degraded shards",
            ", ".join(
                f"worker {d['worker']} rows [{d['row_start']}, {d['row_stop']}) "
                f"at generation {d['generation']}"
                for d in report.degraded_shards
            ),
        )
    if bit_identical is not None:
        table.add_row("vs unsupervised", "bit-exact" if bit_identical else "MISMATCH")
    table.add_row("wall time", f"{report.wall_time_seconds:.2f}s")
    table.print()
    for event in report.restarts:
        print(
            f"restart: worker {event.worker} incarnation {event.incarnation} "
            f"at generation {event.generation} after {event.delay:.2f}s "
            f"on {event.backend!r}: {event.reason}"
        )
    return exit_code


def _cmd_telemetry_summarize(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import TelemetryReport

    report = TelemetryReport.load(args.path)
    if args.json:
        print(json.dumps(report.summary_json(), indent=2, sort_keys=True))
        return 0
    for line in report.summary_lines():
        print(line)
    return 0


def _cmd_telemetry_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.telemetry import TelemetryReport, write_trace

    out = args.output
    if out is None:
        out = str(Path(args.path).with_suffix("")) + ".trace.json"
    report = TelemetryReport.load(args.path)
    count = write_trace(report, out)
    print(f"trace: wrote {count} event(s) to {out}")
    return 0


def _cmd_telemetry_diff(args: argparse.Namespace) -> int:
    from repro.telemetry import diff_payloads, format_deltas
    from repro.telemetry.diff import extract_metrics, load_payload

    base = load_payload(args.base)
    head = load_payload(args.head)
    deltas = diff_payloads(base, head, min_seconds=args.min_seconds)
    _, base_metrics = extract_metrics(base, args.min_seconds)
    _, head_metrics = extract_metrics(head, args.min_seconds)
    threshold = args.fail_on_regression
    print(f"telemetry diff: {args.base} -> {args.head}")
    for line in format_deltas(
        deltas,
        threshold,
        base_only=sorted(set(base_metrics) - set(head_metrics)),
        head_only=sorted(set(head_metrics) - set(base_metrics)),
    ):
        print(line)
    if any(d.regression(threshold) for d in deltas):
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VLSI lattice-engine reproduction toolkit "
        "(Kugelmass, Squier & Steiglitz 1987)",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("design", help="optimal WSA/SPA operating points")
    _add_technology_args(p)
    p.add_argument("--lattice-size", type=int, default=None)
    p.set_defaults(func=_cmd_design)

    p = sub.add_parser("compare", help="section 6.3 architecture comparison")
    p.add_argument("--lattice-size", type=int, default=None)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("simulate", help="run a lattice gas / engine")
    p.add_argument("--model", choices=("fhp6", "fhp7", "fhp-sat", "hpp"), default="fhp6")
    p.add_argument("--rows", type=int, default=32)
    p.add_argument("--cols", type=int, default=32)
    p.add_argument("--steps", type=int, default=50)
    p.add_argument("--density", type=float, default=0.3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--boundary", choices=("periodic", "null", "reflecting"), default="periodic")
    p.add_argument(
        "--engine",
        choices=("none", "serial", "wsa", "spa", "wsa-e"),
        default="none",
    )
    p.add_argument("--depth", type=int, default=2, help="pipeline depth k")
    p.add_argument("--lanes", type=int, default=4, help="WSA lanes P")
    p.add_argument("--slice-width", type=int, default=8, help="SPA slice width W")
    p.add_argument(
        "--backend",
        choices=("reference", "bitplane", "parallel"),
        default="reference",
        help="stepping kernels: per-site reference, multi-spin coded "
        "bit-planes, or thread-tiled bit-planes",
    )
    p.add_argument(
        "--workers",
        default=None,
        help="worker threads for --backend parallel: a positive integer "
        "or 'auto' (rejected by other backends)",
    )
    _add_telemetry_arg(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("bounds", help="evaluate the I/O bound")
    p.add_argument("--dimension", type=int, default=2)
    p.add_argument("--storage", type=float, default=1600)
    p.add_argument("--bandwidth", type=float, default=1e6, help="site values/s")
    p.add_argument("--target-rate", type=float, default=None)
    p.set_defaults(func=_cmd_bounds)

    p = sub.add_parser(
        "machines",
        help="the machine registry (and the 1987 machine comparison)",
    )
    p.add_argument("--dimension", type=int, default=2)
    p.set_defaults(func=_cmd_machines)
    msub = p.add_subparsers(dest="machines_command", required=False)
    mp = msub.add_parser("list", help="list registered engine architectures")
    mp.add_argument("--json", action="store_true", help="machine-readable output")
    mp.set_defaults(func=_cmd_machines_list)
    mp = msub.add_parser("describe", help="one machine's design model + capabilities")
    mp.add_argument("name", help="registered machine name (see 'machines list')")
    mp.add_argument("--json", action="store_true", help="machine-readable output")
    mp.add_argument(
        "--lattice-size",
        type=int,
        default=None,
        help="evaluate the design model at this L (default: its natural point)",
    )
    mp.set_defaults(func=_cmd_machines_describe)

    p = sub.add_parser("regimes", help="which architecture wins where")
    p.add_argument(
        "--bandwidth-budget",
        type=float,
        default=None,
        help="main-memory budget in bits/tick (None = unconstrained)",
    )
    p.set_defaults(func=_cmd_regimes)

    p = sub.add_parser("pebble", help="run pebbling schedules vs the bound")
    p.add_argument("--dimension", type=int, default=2)
    p.add_argument("--side", type=int, default=16)
    p.add_argument("--generations", type=int, default=6)
    p.add_argument("--cache", type=int, default=64, help="LRU cache size")
    p.set_defaults(func=_cmd_pebble)

    p = sub.add_parser("viscosity", help="measure FHP shear viscosity")
    p.add_argument("--model", choices=("fhp6", "fhp7", "fhp-sat"), default="fhp6")
    p.add_argument("--size", type=int, default=128)
    p.add_argument("--density", type=float, default=0.2)
    p.add_argument("--amplitude", type=float, default=0.15)
    p.add_argument("--steps", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_viscosity)

    p = sub.add_parser("lint", help="run the static design-rule checker")
    p.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    p.add_argument("--format", choices=("text", "json", "github"), default="text")
    p.add_argument("--select", default=None, help="comma-separated rule ids")
    p.add_argument("--ignore", default=None, help="comma-separated rule ids")
    p.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    p.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="print the long-form rationale for one rule id and exit",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="fail on any finding not in the baseline, and on stale entries",
    )
    p.add_argument(
        "--baseline",
        default=".repro-lint-baseline.json",
        help="baseline file for --strict (default: .repro-lint-baseline.json)",
    )
    p.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the accepted baseline and exit",
    )
    p.add_argument(
        "--project-cache",
        default=None,
        metavar="PATH",
        help="digest-keyed cache file for the cross-file project graph",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("sanitize", help="run the physics sanitizer")
    p.add_argument(
        "--check",
        action="append",
        default=None,
        help="check group to run (repeatable; default: all)",
    )
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument(
        "--list-checks", action="store_true", help="list check groups and exit"
    )
    p.set_defaults(func=_cmd_sanitize)

    p = sub.add_parser("faults", help="run the fault-injection campaign")
    p.add_argument(
        "--backend",
        choices=("reference", "bitplane", "parallel"),
        default="reference",
        help="stepping kernels (the campaign's stream hooks require "
        "'reference'; others are rejected with the uniform error)",
    )
    p.add_argument(
        "--workers",
        default=None,
        help="worker threads ('parallel' backend only; validated like "
        "every other command)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--rows", type=int, default=16)
    p.add_argument("--cols", type=int, default=16)
    p.add_argument("--generations", type=int, default=8)
    p.add_argument("--checkpoint-interval", type=int, default=4)
    p.add_argument(
        "--no-monitors",
        action="store_true",
        help="disable all monitors (the control arm: faults go undetected)",
    )
    p.add_argument(
        "--trial-timeout",
        type=float,
        default=60.0,
        help="wall-clock seconds per trial before it is aborted",
    )
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument(
        "--json",
        dest="format",
        action="store_const",
        const="json",
        help="shorthand for --format json",
    )
    _add_telemetry_arg(p)
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser(
        "run",
        help="evolve a lattice gas, optionally under process supervision",
    )
    p.add_argument("--model", choices=("fhp6", "fhp7", "fhp-sat", "hpp"), default="fhp6")
    p.add_argument("--rows", type=int, default=64)
    p.add_argument("--cols", type=int, default=64)
    p.add_argument("--generations", type=int, default=32)
    p.add_argument("--density", type=float, default=0.3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--boundary",
        choices=("periodic", "null"),
        default="periodic",
        help="boundary condition (supervision shards rows bit-identically "
        "for these two only)",
    )
    p.add_argument(
        "--backend",
        choices=("reference", "bitplane", "parallel"),
        default="reference",
        help="stepping kernels ('parallel' is thread-tiled; direct runs only)",
    )
    p.add_argument(
        "--supervised",
        action="store_true",
        help="shard across worker processes under the supervisor",
    )
    p.add_argument(
        "--workers",
        default=None,
        help="supervised: worker process count (integer, default 2); "
        "direct with --backend parallel: thread count or 'auto'",
    )
    p.add_argument(
        "--fallback-backend",
        choices=("reference", "bitplane"),
        default="reference",
        help="backend the circuit breaker falls back to",
    )
    p.add_argument("--checkpoint-interval", type=int, default=8)
    p.add_argument(
        "--checkpoint-dir",
        default=None,
        help="durable checkpoint directory (default: a private temp dir)",
    )
    p.add_argument(
        "--watchdog-timeout",
        type=float,
        default=10.0,
        help="seconds of silence before a worker is presumed hung",
    )
    p.add_argument(
        "--restart-delay",
        type=float,
        default=0.1,
        help="base restart backoff delay in seconds",
    )
    p.add_argument(
        "--max-worker-restarts",
        type=int,
        default=3,
        help="restarts per worker between checkpoints before it is dropped",
    )
    p.add_argument(
        "--max-restarts",
        type=int,
        default=8,
        help="total restart budget across all workers",
    )
    p.add_argument("--breaker-threshold", type=int, default=3)
    p.add_argument("--breaker-cooldown", type=float, default=30.0)
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds for the whole run",
    )
    p.add_argument(
        "--allow-degraded",
        action="store_true",
        help="complete (exit 3) with unrecoverable shards frozen at their "
        "last checkpoint instead of failing",
    )
    p.add_argument(
        "--induce",
        action="append",
        default=None,
        metavar="SPEC",
        help="induce a worker fault for testing: KIND:WORKER@GEN"
        "[:backend=B][:lives=N][:seconds=S], KIND in kill|stall|backend-error",
    )
    p.add_argument(
        "--verify",
        action="store_true",
        help="also run unsupervised and require bit-identical output",
    )
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument(
        "--json",
        dest="format",
        action="store_const",
        const="json",
        help="shorthand for --format json",
    )
    _add_telemetry_arg(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("telemetry", help="inspect telemetry reports")
    tsub = p.add_subparsers(dest="telemetry_command", required=True)
    tp = tsub.add_parser(
        "summarize",
        help="print a digest of a telemetry report written by --telemetry",
    )
    tp.add_argument("path", help="telemetry report JSON file")
    tp.add_argument(
        "--json",
        action="store_true",
        help="machine-readable digest (timer aggregates, span roots, "
        "event/process summaries) instead of text",
    )
    tp.set_defaults(func=_cmd_telemetry_summarize)
    tp = tsub.add_parser(
        "trace",
        help="export a report to Chrome trace-event JSON "
        "(load in chrome://tracing or ui.perfetto.dev)",
    )
    tp.add_argument("path", help="telemetry report JSON file")
    tp.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="trace output path (default: INPUT stem + .trace.json)",
    )
    tp.set_defaults(func=_cmd_telemetry_trace)
    tp = tsub.add_parser(
        "diff",
        help="compare two telemetry/bench reports; exit 1 on perf "
        "regressions past the threshold",
    )
    tp.add_argument("base", help="baseline report JSON (telemetry or BENCH)")
    tp.add_argument("head", help="candidate report JSON (same schema family)")
    tp.add_argument(
        "--fail-on-regression",
        type=float,
        default=10.0,
        metavar="PCT",
        help="regression threshold in percent (default: 10)",
    )
    tp.add_argument(
        "--min-seconds",
        type=float,
        default=0.0,
        metavar="S",
        help="timers with a mean below S never gate (filters scheduler "
        "noise on micro-timers; default 0: everything gates)",
    )
    tp.set_defaults(func=_cmd_telemetry_diff)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
