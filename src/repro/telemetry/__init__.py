"""The instrumentation spine: one measurement path for every subsystem.

Engines, kernel backends, the supervised runtime, the resilience layer,
the benchmarks, and the CLI all report through the same
:class:`~repro.telemetry.core.Recorder` protocol; recording defaults to
the zero-overhead :data:`~repro.telemetry.core.NULL_RECORDER` and is
switched on by passing an
:class:`~repro.telemetry.core.InMemoryRecorder`, whose contents land in
a schema-versioned :class:`~repro.telemetry.report.TelemetryReport`.

Multi-process runs extend the spine across process boundaries: workers
append recorder snapshots to crash-safe spools
(:mod:`repro.telemetry.spool`), a merger folds them into one v2 report
(:mod:`repro.telemetry.merge`), and the result exports to Chrome trace
JSON (:mod:`repro.telemetry.trace`) or gates CI through the
perf-regression differ (:mod:`repro.telemetry.diff`).

See ``docs/OBSERVABILITY.md`` for the event model and report schema.
"""

from repro.telemetry.core import (
    MONOTONIC,
    NULL_RECORDER,
    PERF_COUNTER,
    Clock,
    Counter,
    InMemoryRecorder,
    NullRecorder,
    Recorder,
    SpanRecord,
    StepClock,
    Timer,
)
from repro.telemetry.diff import (
    Metric,
    MetricDelta,
    diff_payloads,
    extract_metrics,
    format_deltas,
)
from repro.telemetry.merge import (
    ProcessTelemetry,
    coordinator_process,
    load_worker_spools,
    merge_processes,
    merge_timers,
    spool_process,
)
from repro.telemetry.report import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    TelemetryError,
    TelemetryReport,
    check_report,
    run_metadata,
    validate_report,
)
from repro.telemetry.spool import (
    SpoolFrame,
    SpoolWriter,
    WorkerSpool,
    read_frames,
    worker_spool_path,
)
from repro.telemetry.trace import trace_dict, trace_events, write_trace

__all__ = [
    "Clock",
    "MONOTONIC",
    "PERF_COUNTER",
    "StepClock",
    "Counter",
    "Timer",
    "SpanRecord",
    "Recorder",
    "NullRecorder",
    "InMemoryRecorder",
    "NULL_RECORDER",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "SUPPORTED_VERSIONS",
    "TelemetryError",
    "TelemetryReport",
    "check_report",
    "run_metadata",
    "validate_report",
    "SpoolFrame",
    "SpoolWriter",
    "WorkerSpool",
    "read_frames",
    "worker_spool_path",
    "ProcessTelemetry",
    "coordinator_process",
    "spool_process",
    "load_worker_spools",
    "merge_processes",
    "merge_timers",
    "Metric",
    "MetricDelta",
    "extract_metrics",
    "diff_payloads",
    "format_deltas",
    "trace_events",
    "trace_dict",
    "write_trace",
]
