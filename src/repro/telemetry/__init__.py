"""The instrumentation spine: one measurement path for every subsystem.

Engines, kernel backends, the supervised runtime, the resilience layer,
the benchmarks, and the CLI all report through the same
:class:`~repro.telemetry.core.Recorder` protocol; recording defaults to
the zero-overhead :data:`~repro.telemetry.core.NULL_RECORDER` and is
switched on by passing an
:class:`~repro.telemetry.core.InMemoryRecorder`, whose contents land in
a schema-versioned :class:`~repro.telemetry.report.TelemetryReport`.

See ``docs/OBSERVABILITY.md`` for the event model and report schema.
"""

from repro.telemetry.core import (
    MONOTONIC,
    NULL_RECORDER,
    PERF_COUNTER,
    Clock,
    Counter,
    InMemoryRecorder,
    NullRecorder,
    Recorder,
    SpanRecord,
    StepClock,
    Timer,
)
from repro.telemetry.report import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    TelemetryError,
    TelemetryReport,
    check_report,
    validate_report,
)

__all__ = [
    "Clock",
    "MONOTONIC",
    "PERF_COUNTER",
    "StepClock",
    "Counter",
    "Timer",
    "SpanRecord",
    "Recorder",
    "NullRecorder",
    "InMemoryRecorder",
    "NULL_RECORDER",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "TelemetryError",
    "TelemetryReport",
    "check_report",
    "validate_report",
]
