"""Perf-regression differ: compare telemetry and bench reports in CI.

``repro telemetry diff BASE.json HEAD.json [--fail-on-regression PCT]``
turns committed BENCH/telemetry JSON from write-only artifacts into a
gated trajectory: extract comparable scalar metrics from both payloads
(schema-dispatched), compute relative change, and exit nonzero when any
metric regresses past the threshold.

Supported schemas (BASE and HEAD must match):

* ``repro-telemetry`` (v1 and v2) — timer ``mean_seconds`` (lower is
  better); counters are compared informationally but never gate, since
  several (heartbeats, restarts) are timing-dependent by design;
* ``repro/bench-kernels/*`` — per-result ``updates_per_second`` (higher
  is better), keyed by model/size/backend/workers;
* ``repro/bench-supervisor/*`` — direct/supervised update rates (higher
  is better).

``--min-seconds`` filters sub-threshold timers out of the gate (a 2 µs
mean doubling is scheduler noise, not a regression); it defaults to 0
so explicit comparisons see everything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.telemetry.report import TelemetryError

__all__ = [
    "Metric",
    "MetricDelta",
    "extract_metrics",
    "diff_payloads",
    "format_deltas",
    "load_payload",
]


@dataclass(frozen=True)
class Metric:
    """One comparable scalar: value plus polarity and gating eligibility."""

    name: str
    value: float
    unit: str
    higher_is_better: bool
    gates: bool = True


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across BASE and HEAD."""

    name: str
    base: float
    head: float
    unit: str
    higher_is_better: bool
    gates: bool

    @property
    def change_percent(self) -> float:
        """Relative change HEAD vs BASE, signed so positive = worse.

        For lower-is-better metrics (timers) this is the slowdown; for
        higher-is-better metrics (update rates) the throughput loss.
        """
        if self.base == 0.0:
            return 0.0
        raw = (self.head - self.base) / self.base * 100.0
        return -raw if self.higher_is_better else raw

    def regression(self, threshold_percent: float) -> bool:
        """Whether this metric regressed past the threshold (and gates)."""
        return self.gates and self.change_percent > threshold_percent


def _telemetry_metrics(
    payload: Mapping[str, object], min_seconds: float
) -> dict[str, Metric]:
    """Timer means (gating) + counters (informational) from a report."""
    metrics: dict[str, Metric] = {}
    timers = payload.get("timers")
    if isinstance(timers, Mapping):
        for name, t in timers.items():
            if not isinstance(t, Mapping) or not int(t.get("count", 0)):
                continue
            mean = float(t["mean_seconds"])
            metrics[f"timer:{name}"] = Metric(
                name=f"timer:{name}",
                value=mean,
                unit="s/op",
                higher_is_better=False,
                gates=mean >= min_seconds,
            )
    counters = payload.get("counters")
    if isinstance(counters, Mapping):
        for name, value in counters.items():
            if isinstance(value, int) and not isinstance(value, bool):
                metrics[f"counter:{name}"] = Metric(
                    name=f"counter:{name}",
                    value=float(value),
                    unit="count",
                    higher_is_better=True,
                    gates=False,
                )
    return metrics


def _bench_kernels_metrics(payload: Mapping[str, object]) -> dict[str, Metric]:
    """Per-configuration update rates from a BENCH_kernels payload."""
    metrics: dict[str, Metric] = {}
    for row in payload.get("results", []):  # type: ignore[union-attr]
        if not isinstance(row, Mapping):
            continue
        key = (
            f"{row.get('model')}.{row.get('rows')}x{row.get('cols')}"
            f".{row.get('backend')}"
        )
        workers = row.get("workers")
        if workers is not None:
            key += f".w{workers}"
        rate = row.get("updates_per_second")
        if isinstance(rate, (int, float)):
            name = f"rate:{key}"
            metrics[name] = Metric(
                name=name,
                value=float(rate),
                unit="site-updates/s",
                higher_is_better=True,
            )
    return metrics


def _bench_supervisor_metrics(payload: Mapping[str, object]) -> dict[str, Metric]:
    """Direct/supervised update rates from a BENCH_supervisor payload."""
    metrics: dict[str, Metric] = {}
    for row in payload.get("results", []):  # type: ignore[union-attr]
        if not isinstance(row, Mapping):
            continue
        label = (
            f"{row.get('rows')}x{row.get('cols')}.{row.get('backend')}"
            f".w{row.get('workers')}"
        )
        for arm in ("direct", "supervised"):
            rate = row.get(f"{arm}_rate")
            if isinstance(rate, (int, float)):
                name = f"rate:{label}.{arm}"
                existing = metrics.get(name)
                # repeats share a label: keep the best (bench semantics)
                if existing is None or float(rate) > existing.value:
                    metrics[name] = Metric(
                        name=name,
                        value=float(rate),
                        unit="site-updates/s",
                        higher_is_better=True,
                    )
    return metrics


def extract_metrics(
    payload: object, min_seconds: float = 0.0
) -> tuple[str, dict[str, Metric]]:
    """Schema-dispatch a payload into ``(schema_name, metrics)``.

    Raises
    ------
    TelemetryError
        When the payload carries no recognized schema.
    """
    if not isinstance(payload, Mapping):
        raise TelemetryError(
            f"diff input must be a JSON object, got {type(payload).__name__}"
        )
    schema = payload.get("schema")
    if not isinstance(schema, str):
        raise TelemetryError("diff input carries no 'schema' field")
    if schema == "repro-telemetry":
        return schema, _telemetry_metrics(payload, min_seconds)
    if schema.startswith("repro/bench-kernels/"):
        return schema, _bench_kernels_metrics(payload)
    if schema.startswith("repro/bench-supervisor/"):
        return schema, _bench_supervisor_metrics(payload)
    raise TelemetryError(f"diff does not understand schema {schema!r}")


def diff_payloads(
    base: object, head: object, min_seconds: float = 0.0
) -> list[MetricDelta]:
    """Compare two payloads of the same schema family, metric by metric.

    Only metrics present on both sides yield deltas — appearing and
    disappearing metrics are a schema/coverage change, not a perf
    signal, and are left to the human reading the formatted output.
    """
    base_schema, base_metrics = extract_metrics(base, min_seconds)
    head_schema, head_metrics = extract_metrics(head, min_seconds)
    base_family = base_schema.rsplit("/", 1)[0]
    head_family = head_schema.rsplit("/", 1)[0]
    if base_family != head_family:
        raise TelemetryError(
            f"cannot diff across schemas: base is {base_schema!r}, "
            f"head is {head_schema!r}"
        )
    deltas: list[MetricDelta] = []
    for name in sorted(base_metrics):
        if name not in head_metrics:
            continue
        b, h = base_metrics[name], head_metrics[name]
        deltas.append(
            MetricDelta(
                name=name,
                base=b.value,
                head=h.value,
                unit=b.unit,
                higher_is_better=b.higher_is_better,
                gates=b.gates and h.gates,
            )
        )
    return deltas


def format_deltas(
    deltas: list[MetricDelta],
    threshold_percent: float,
    base_only: list[str] | None = None,
    head_only: list[str] | None = None,
) -> list[str]:
    """Render a diff as aligned text lines, regressions flagged."""
    lines: list[str] = []
    regressions = [d for d in deltas if d.regression(threshold_percent)]
    width = max((len(d.name) for d in deltas), default=0)
    for d in deltas:
        flag = " REGRESSION" if d.regression(threshold_percent) else ""
        note = "" if d.gates else " (not gated)"
        lines.append(
            f"  {d.name:<{width}}  {d.base:.6g} -> {d.head:.6g} {d.unit} "
            f"({d.change_percent:+.1f}% {'worse' if d.change_percent > 0 else 'better'})"
            f"{flag}{note}"
        )
    for name in base_only or []:
        lines.append(f"  {name}: only in BASE")
    for name in head_only or []:
        lines.append(f"  {name}: only in HEAD")
    lines.append(
        f"{len(deltas)} metric(s) compared, {len(regressions)} regression(s) "
        f"past {threshold_percent:g}%"
    )
    return lines


def load_payload(path: str | Path) -> object:
    """Read one JSON payload for diffing (raises :class:`TelemetryError`)."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TelemetryError(f"cannot read {path}: {exc}") from exc
