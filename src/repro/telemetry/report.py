"""Schema-versioned telemetry reports: the JSON sink and its validator.

A :class:`TelemetryReport` wraps an
:class:`~repro.telemetry.core.InMemoryRecorder` snapshot with schema
identity and free-form metadata, so every producer (`repro simulate
--telemetry`, `repro run --telemetry`, `repro faults --telemetry`, the
benchmark scripts) and every consumer (`repro telemetry summarize`, the
CI telemetry-smoke job, the bench assertions) agree on one layout:

.. code-block:: json

    {
      "schema": "repro-telemetry",
      "schema_version": 2,
      "meta": {"command": "simulate", "run": {"host": "...", "pid": 1}},
      "counters": {"engine.ticks": 1234},
      "timers": {"kernel.bitplane.tick": {"count": 16, "...": "..."}},
      "spans": [{"name": "engine.run", "parent": -1, "...": "..."}],
      "events": [{"name": "supervisor.restart", "time": 0.5}],
      "processes": [{"name": "worker-00.00", "kind": "worker", "...": "..."}]
    }

Schema **v2** (current) adds two things over v1: a mandatory
``meta.run`` block identifying the producing process (hostname, pid,
python version, cpu count, repro version, producing subsystem), and an
optional ``processes`` list carrying per-process counter/timer
attribution for multi-process reports merged from worker spools (see
:mod:`repro.telemetry.merge`).  v1 payloads still load: ``meta.run``
and ``processes`` are tolerated as absent.

``validate_report`` returns a list of problems instead of raising so CI
can print all of them; :func:`check_report` is the raising form used by
loaders.
"""

from __future__ import annotations

import json
import os
import platform
import socket
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.telemetry.core import InMemoryRecorder
from repro.util.errors import ReproError

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "SUPPORTED_VERSIONS",
    "TelemetryError",
    "TelemetryReport",
    "run_metadata",
    "validate_report",
    "check_report",
]

#: Telemetry report schema identity.
SCHEMA_NAME = "repro-telemetry"
#: The version new reports are written at.
SCHEMA_VERSION = 2
#: Versions ``validate_report`` accepts (v1 predates ``meta.run`` and
#: ``processes``; both are tolerated as absent there).
SUPPORTED_VERSIONS = (1, 2)

#: Keys every timer mapping must carry.
_TIMER_KEYS = (
    "count",
    "total_seconds",
    "min_seconds",
    "max_seconds",
    "mean_seconds",
    "buckets",
)

#: Keys every span mapping must carry.
_SPAN_KEYS = ("name", "index", "parent", "depth", "start", "seconds")

#: Keys every ``meta.run`` block must carry on a v2 report.
_RUN_KEYS = ("host", "pid", "python", "cpu_count", "repro_version")


class TelemetryError(ReproError):
    """A telemetry report is malformed or fails schema validation."""


def run_metadata(producer: str | None = None) -> dict[str, object]:
    """The ``meta.run`` block: who produced this report, on what box.

    Deliberately clock-free (RPR103): identity only, no timestamps —
    report times live on the recorder's monotonic timeline, and wall
    dates would break byte-reproducibility gates.
    """
    from repro import __version__

    block: dict[str, object] = {
        "host": socket.gethostname(),
        "pid": os.getpid(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "repro_version": __version__,
    }
    if producer is not None:
        block["producer"] = producer
    return block


@dataclass
class TelemetryReport:
    """One run's telemetry: counters, timers, spans, events, metadata.

    ``processes`` is empty for single-process reports; merged
    multi-process reports (schema v2, built by
    :func:`repro.telemetry.merge.merge_processes`) carry one entry per
    participating process with its own counters/timers, while the
    top-level sections hold the cross-process aggregate.
    """

    counters: dict[str, int] = field(default_factory=dict)
    timers: dict[str, dict] = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    meta: dict[str, object] = field(default_factory=dict)
    processes: list[dict] = field(default_factory=list)
    version: int = SCHEMA_VERSION

    @classmethod
    def from_recorder(
        cls,
        recorder: InMemoryRecorder,
        meta: Mapping[str, object] | None = None,
        producer: str | None = None,
    ) -> "TelemetryReport":
        """Snapshot a recorder into a report (metadata merged in).

        Stamps :func:`run_metadata` into ``meta["run"]`` unless the
        caller already provided one (a merger stamping the
        coordinator's identity, say).
        """
        snap = recorder.snapshot()
        merged_meta = dict(meta or {})
        if "run" not in merged_meta:
            merged_meta["run"] = run_metadata(producer)
        return cls(
            counters=dict(snap["counters"]),  # type: ignore[arg-type]
            timers=dict(snap["timers"]),  # type: ignore[arg-type]
            spans=list(snap["spans"]),  # type: ignore[arg-type]
            events=list(snap["events"]),  # type: ignore[arg-type]
            meta=merged_meta,
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (schema-versioned)."""
        payload: dict[str, object] = {
            "schema": SCHEMA_NAME,
            "schema_version": self.version,
            "meta": self.meta,
            "counters": self.counters,
            "timers": self.timers,
            "spans": self.spans,
            "events": self.events,
        }
        if self.version >= 2:
            payload["processes"] = self.processes
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TelemetryReport":
        """Parse and validate a report payload (raises :class:`TelemetryError`)."""
        check_report(payload)
        return cls(
            counters=dict(payload["counters"]),  # type: ignore[arg-type]
            timers=dict(payload["timers"]),  # type: ignore[arg-type]
            spans=list(payload["spans"]),  # type: ignore[arg-type]
            events=list(payload["events"]),  # type: ignore[arg-type]
            meta=dict(payload.get("meta", {})),  # type: ignore[arg-type]
            processes=list(payload.get("processes", [])),  # type: ignore[arg-type]
            version=int(payload["schema_version"]),  # type: ignore[arg-type]
        )

    def write_json(self, path: str | Path) -> None:
        """Write the report to ``path`` (stable key order, trailing newline)."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: str | Path) -> "TelemetryReport":
        """Load and validate a report written by :meth:`write_json`."""
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise TelemetryError(f"cannot read telemetry report {path}: {exc}") from exc
        return cls.from_dict(payload)

    # -- summarizing ---------------------------------------------------

    def total_seconds(self, timer_prefix: str) -> float:
        """Sum of ``total_seconds`` over timers whose name has the prefix."""
        return sum(
            float(t["total_seconds"])
            for name, t in self.timers.items()
            if name.startswith(timer_prefix)
        )

    def summary_lines(self) -> list[str]:
        """Human-readable digest for ``repro telemetry summarize``."""
        lines = [f"telemetry report (schema {SCHEMA_NAME} v{self.version})"]
        plain_meta = {k: v for k, v in self.meta.items() if k != "run"}
        if plain_meta:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(plain_meta.items()))
            lines.append(f"  meta: {pairs}")
        run = self.meta.get("run")
        if isinstance(run, Mapping):
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(run.items()))
            lines.append(f"  run: {pairs}")
        if self.processes:
            lines.append(f"  processes: {len(self.processes)}")
            for p in self.processes:
                bits = [str(p.get("kind", "process"))]
                if p.get("pid") is not None:
                    bits.append(f"pid={p['pid']}")
                if p.get("backend"):
                    bits.append(f"backend={p['backend']}")
                shard = p.get("shard")
                if isinstance(shard, Mapping):
                    bits.append(f"rows=[{shard.get('row_start')},{shard.get('row_stop')})")
                offset = p.get("clock_offset_seconds")
                if offset:
                    bits.append(f"offset={float(offset):+.6f}s")
                lines.append(f"    {p.get('name')}: " + " ".join(bits))
        if self.counters:
            lines.append("  counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"    {name} = {value}")
        if self.timers:
            lines.append("  timers:")
            for name, t in sorted(self.timers.items()):
                lines.append(
                    f"    {name}: n={t['count']} total={t['total_seconds']:.6f}s "
                    f"mean={t['mean_seconds']:.6f}s "
                    f"min={t['min_seconds']:.6f}s max={t['max_seconds']:.6f}s"
                )
        # An explicit zero keeps "no spans" distinguishable from "the
        # summarizer skipped the section" (the old behavior read as a
        # truncated report).
        if self.spans:
            lines.append(f"  spans: {len(self.spans)}")
            roots = [s for s in self.spans if s.get("parent", -1) == -1]
            for root in roots:
                origin = f" [{root['process']}]" if "process" in root else ""
                seconds = root.get("seconds") or 0.0
                lines.append(
                    f"    {root['name']}{origin}: {float(seconds):.6f}s "
                    f"({self._child_count(int(root['index']))} nested)"
                )
        else:
            lines.append("  spans: none recorded")
        if self.events:
            lines.append(f"  events: {len(self.events)}")
            by_name: dict[str, int] = {}
            for e in self.events:
                by_name[str(e.get("name"))] = by_name.get(str(e.get("name")), 0) + 1
            for name, n in sorted(by_name.items()):
                lines.append(f"    {name} x{n}")
        return lines

    def summary_json(self) -> dict[str, object]:
        """Machine-readable digest for ``repro telemetry summarize --json``.

        Aggregates only — timer scalars without buckets, span roots,
        event counts by name — so dashboards and shell pipelines get
        stable keys without parsing the full report.
        """
        roots = []
        for s in self.spans:
            if s.get("parent", -1) == -1:
                root: dict[str, object] = {
                    "name": s.get("name"),
                    "seconds": s.get("seconds") or 0.0,
                    "nested": self._child_count(int(s["index"])),
                }
                if "process" in s:
                    root["process"] = s["process"]
                roots.append(root)
        events_by_name: dict[str, int] = {}
        for e in self.events:
            name = str(e.get("name"))
            events_by_name[name] = events_by_name.get(name, 0) + 1
        return {
            "schema": SCHEMA_NAME,
            "schema_version": self.version,
            "meta": self.meta,
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                name: {k: t[k] for k in _TIMER_KEYS if k != "buckets"}
                for name, t in sorted(self.timers.items())
            },
            "spans": {"count": len(self.spans), "roots": roots},
            "events": {"count": len(self.events), "by_name": events_by_name},
            "processes": [
                {
                    "name": p.get("name"),
                    "kind": p.get("kind"),
                    "pid": p.get("pid"),
                    "backend": p.get("backend"),
                }
                for p in self.processes
            ],
        }

    def _child_count(self, root_index: int) -> int:
        children = {root_index}
        # spans are appended in creation order, so parents precede children
        for s in self.spans:
            if int(s.get("parent", -1)) in children:
                children.add(int(s["index"]))
        return len(children) - 1


def _validate_run_block(meta: Mapping[str, object], problems: list[str]) -> None:
    """v2 rule: ``meta.run`` must exist and carry the identity keys."""
    run = meta.get("run")
    if not isinstance(run, Mapping):
        problems.append("v2 report must carry a meta.run mapping (see run_metadata)")
        return
    missing = [k for k in _RUN_KEYS if k not in run]
    if missing:
        problems.append(f"meta.run missing key(s): {', '.join(missing)}")


def _validate_processes(payload: Mapping[str, object], problems: list[str]) -> None:
    """v2 rule: ``processes`` entries need a name and well-formed sections."""
    processes = payload.get("processes")
    if processes is None:
        return
    if not isinstance(processes, list):
        problems.append("processes must be a list")
        return
    for i, p in enumerate(processes):
        if not isinstance(p, Mapping):
            problems.append(f"process [{i}] must be a mapping")
            continue
        if not isinstance(p.get("name"), str):
            problems.append(f"process [{i}] must carry a string 'name'")
        counters = p.get("counters")
        if counters is not None and not isinstance(counters, Mapping):
            problems.append(f"process [{i}] counters must be a mapping")
        timers = p.get("timers")
        if timers is not None and not isinstance(timers, Mapping):
            problems.append(f"process [{i}] timers must be a mapping")


def validate_report(payload: object) -> list[str]:
    """All schema problems with ``payload`` (empty list = valid report).

    Accepts every version in :data:`SUPPORTED_VERSIONS`: v2 reports
    must stamp ``meta.run`` and may carry ``processes``; v1 reports are
    validated by the original rules with both tolerated as absent.
    """
    problems: list[str] = []
    if not isinstance(payload, Mapping):
        return [f"report must be a mapping, got {type(payload).__name__}"]
    if payload.get("schema") != SCHEMA_NAME:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {SCHEMA_NAME!r}"
        )
    version = payload.get("schema_version")
    if version not in SUPPORTED_VERSIONS:
        problems.append(
            f"schema_version is {version!r}, "
            f"expected one of {', '.join(map(str, SUPPORTED_VERSIONS))}"
        )
    counters = payload.get("counters")
    if not isinstance(counters, Mapping):
        problems.append("counters must be a mapping of name -> int")
    else:
        for name, value in counters.items():
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                problems.append(f"counter {name!r} must be a non-negative int")
    timers = payload.get("timers")
    if not isinstance(timers, Mapping):
        problems.append("timers must be a mapping of name -> histogram")
    else:
        for name, t in timers.items():
            if not isinstance(t, Mapping):
                problems.append(f"timer {name!r} must be a mapping")
                continue
            missing = [k for k in _TIMER_KEYS if k not in t]
            if missing:
                problems.append(f"timer {name!r} missing key(s): {', '.join(missing)}")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        problems.append("spans must be a list")
    else:
        for i, s in enumerate(spans):
            if not isinstance(s, Mapping):
                problems.append(f"span [{i}] must be a mapping")
                continue
            missing = [k for k in _SPAN_KEYS if k not in s]
            if missing:
                problems.append(f"span [{i}] missing key(s): {', '.join(missing)}")
                continue
            parent = s["parent"]
            if not isinstance(parent, int) or not (-1 <= parent < i):
                problems.append(
                    f"span [{i}] parent {parent!r} must be -1 or the index "
                    f"of an earlier span"
                )
    events = payload.get("events")
    if not isinstance(events, list):
        problems.append("events must be a list")
    else:
        for i, e in enumerate(events):
            if not isinstance(e, Mapping) or "name" not in e:
                problems.append(f"event [{i}] must be a mapping with a 'name'")
    meta = payload.get("meta", {})
    if not isinstance(meta, Mapping):
        problems.append("meta must be a mapping")
    elif isinstance(version, int) and version >= 2:
        _validate_run_block(meta, problems)
    if isinstance(version, int) and version >= 2:
        _validate_processes(payload, problems)
    return problems


def check_report(payload: object) -> None:
    """Raise :class:`TelemetryError` listing every schema problem."""
    problems = validate_report(payload)
    if problems:
        raise TelemetryError(
            "invalid telemetry report: " + "; ".join(problems)
        )
