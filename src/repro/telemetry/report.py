"""Schema-versioned telemetry reports: the JSON sink and its validator.

A :class:`TelemetryReport` wraps an
:class:`~repro.telemetry.core.InMemoryRecorder` snapshot with schema
identity and free-form metadata, so every producer (`repro simulate
--telemetry`, `repro run --telemetry`, `repro faults --telemetry`, the
benchmark scripts) and every consumer (`repro telemetry summarize`, the
CI telemetry-smoke job, the bench assertions) agree on one layout:

.. code-block:: json

    {
      "schema": "repro-telemetry",
      "schema_version": 1,
      "meta": {"command": "simulate", "...": "..."},
      "counters": {"engine.ticks": 1234},
      "timers": {"kernel.bitplane.tick": {"count": 16, "...": "..."}},
      "spans": [{"name": "engine.run", "parent": -1, "...": "..."}],
      "events": [{"name": "supervisor.restart", "time": 0.5}]
    }

``validate_report`` returns a list of problems instead of raising so CI
can print all of them; :func:`check_report` is the raising form used by
loaders.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.telemetry.core import InMemoryRecorder
from repro.util.errors import ReproError

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "TelemetryError",
    "TelemetryReport",
    "validate_report",
    "check_report",
]

#: Telemetry report schema identity.
SCHEMA_NAME = "repro-telemetry"
#: Bump when the payload layout changes incompatibly.
SCHEMA_VERSION = 1

#: Keys every timer mapping must carry.
_TIMER_KEYS = (
    "count",
    "total_seconds",
    "min_seconds",
    "max_seconds",
    "mean_seconds",
    "buckets",
)

#: Keys every span mapping must carry.
_SPAN_KEYS = ("name", "index", "parent", "depth", "start", "seconds")


class TelemetryError(ReproError):
    """A telemetry report is malformed or fails schema validation."""


@dataclass
class TelemetryReport:
    """One run's telemetry: counters, timers, spans, events, metadata."""

    counters: dict[str, int] = field(default_factory=dict)
    timers: dict[str, dict] = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    meta: dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_recorder(
        cls,
        recorder: InMemoryRecorder,
        meta: Mapping[str, object] | None = None,
    ) -> "TelemetryReport":
        """Snapshot a recorder into a report (metadata merged in)."""
        snap = recorder.snapshot()
        return cls(
            counters=dict(snap["counters"]),  # type: ignore[arg-type]
            timers=dict(snap["timers"]),  # type: ignore[arg-type]
            spans=list(snap["spans"]),  # type: ignore[arg-type]
            events=list(snap["events"]),  # type: ignore[arg-type]
            meta=dict(meta or {}),
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (schema-versioned)."""
        return {
            "schema": SCHEMA_NAME,
            "schema_version": SCHEMA_VERSION,
            "meta": self.meta,
            "counters": self.counters,
            "timers": self.timers,
            "spans": self.spans,
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TelemetryReport":
        """Parse and validate a report payload (raises :class:`TelemetryError`)."""
        check_report(payload)
        return cls(
            counters=dict(payload["counters"]),  # type: ignore[arg-type]
            timers=dict(payload["timers"]),  # type: ignore[arg-type]
            spans=list(payload["spans"]),  # type: ignore[arg-type]
            events=list(payload["events"]),  # type: ignore[arg-type]
            meta=dict(payload.get("meta", {})),  # type: ignore[arg-type]
        )

    def write_json(self, path: str | Path) -> None:
        """Write the report to ``path`` (stable key order, trailing newline)."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: str | Path) -> "TelemetryReport":
        """Load and validate a report written by :meth:`write_json`."""
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise TelemetryError(f"cannot read telemetry report {path}: {exc}") from exc
        return cls.from_dict(payload)

    # -- summarizing ---------------------------------------------------

    def total_seconds(self, timer_prefix: str) -> float:
        """Sum of ``total_seconds`` over timers whose name has the prefix."""
        return sum(
            float(t["total_seconds"])
            for name, t in self.timers.items()
            if name.startswith(timer_prefix)
        )

    def summary_lines(self) -> list[str]:
        """Human-readable digest for ``repro telemetry summarize``."""
        lines = [f"telemetry report (schema {SCHEMA_NAME} v{SCHEMA_VERSION})"]
        if self.meta:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.meta.items()))
            lines.append(f"  meta: {pairs}")
        if self.counters:
            lines.append("  counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"    {name} = {value}")
        if self.timers:
            lines.append("  timers:")
            for name, t in sorted(self.timers.items()):
                lines.append(
                    f"    {name}: n={t['count']} total={t['total_seconds']:.6f}s "
                    f"mean={t['mean_seconds']:.6f}s "
                    f"min={t['min_seconds']:.6f}s max={t['max_seconds']:.6f}s"
                )
        if self.spans:
            lines.append(f"  spans: {len(self.spans)}")
            roots = [s for s in self.spans if s.get("parent", -1) == -1]
            for root in roots:
                lines.append(
                    f"    {root['name']}: {float(root['seconds']):.6f}s "
                    f"({self._child_count(int(root['index']))} nested)"
                )
        if self.events:
            lines.append(f"  events: {len(self.events)}")
            by_name: dict[str, int] = {}
            for e in self.events:
                by_name[str(e.get("name"))] = by_name.get(str(e.get("name")), 0) + 1
            for name, n in sorted(by_name.items()):
                lines.append(f"    {name} x{n}")
        return lines

    def _child_count(self, root_index: int) -> int:
        children = {root_index}
        # spans are appended in creation order, so parents precede children
        for s in self.spans:
            if int(s.get("parent", -1)) in children:
                children.add(int(s["index"]))
        return len(children) - 1


def validate_report(payload: object) -> list[str]:
    """All schema problems with ``payload`` (empty list = valid v1 report)."""
    problems: list[str] = []
    if not isinstance(payload, Mapping):
        return [f"report must be a mapping, got {type(payload).__name__}"]
    if payload.get("schema") != SCHEMA_NAME:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {SCHEMA_NAME!r}"
        )
    if payload.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version is {payload.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    counters = payload.get("counters")
    if not isinstance(counters, Mapping):
        problems.append("counters must be a mapping of name -> int")
    else:
        for name, value in counters.items():
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                problems.append(f"counter {name!r} must be a non-negative int")
    timers = payload.get("timers")
    if not isinstance(timers, Mapping):
        problems.append("timers must be a mapping of name -> histogram")
    else:
        for name, t in timers.items():
            if not isinstance(t, Mapping):
                problems.append(f"timer {name!r} must be a mapping")
                continue
            missing = [k for k in _TIMER_KEYS if k not in t]
            if missing:
                problems.append(f"timer {name!r} missing key(s): {', '.join(missing)}")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        problems.append("spans must be a list")
    else:
        for i, s in enumerate(spans):
            if not isinstance(s, Mapping):
                problems.append(f"span [{i}] must be a mapping")
                continue
            missing = [k for k in _SPAN_KEYS if k not in s]
            if missing:
                problems.append(f"span [{i}] missing key(s): {', '.join(missing)}")
                continue
            parent = s["parent"]
            if not isinstance(parent, int) or not (-1 <= parent < i):
                problems.append(
                    f"span [{i}] parent {parent!r} must be -1 or the index "
                    f"of an earlier span"
                )
    events = payload.get("events")
    if not isinstance(events, list):
        problems.append("events must be a list")
    else:
        for i, e in enumerate(events):
            if not isinstance(e, Mapping) or "name" not in e:
                problems.append(f"event [{i}] must be a mapping with a 'name'")
    meta = payload.get("meta", {})
    if not isinstance(meta, Mapping):
        problems.append("meta must be a mapping")
    return problems


def check_report(payload: object) -> None:
    """Raise :class:`TelemetryError` listing every schema problem."""
    problems = validate_report(payload)
    if problems:
        raise TelemetryError(
            "invalid telemetry report: " + "; ".join(problems)
        )
