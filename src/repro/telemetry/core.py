"""The instrumentation core: recorders, counters, timers, spans, clocks.

The paper's whole argument is quantitative — site-update rate R, ticks,
I/O bits, the R = O(B·S^(1/d)) bound — so the reproduction routes every
measurement through one spine instead of four disconnected mechanisms.
This module is that spine's core:

* :class:`Counter` — a pre-bindable monotonic event counter;
* :class:`Timer` — a histogram timer with fixed power-of-two buckets
  (scalar accumulators only, so recording is allocation-free and legal
  inside ``@hot_path`` code under RPR101/RPR102);
* spans — nested wall-clock intervals with tick/generation attribution;
* :class:`Recorder` — the protocol every measuring layer programs
  against, with two implementations:

  :class:`NullRecorder`
      The zero-overhead default.  Its clock is a constant (no syscall),
      its timers and spans are no-ops, and its *counters are real* —
      fresh, unregistered :class:`Counter` objects — so code that
      derives statistics from counter handles (the engines) works
      identically whether or not anything is listening.
  :class:`InMemoryRecorder`
      Registers counters and timers by name, keeps the span tree and
      event list, and snapshots into a
      :class:`~repro.telemetry.report.TelemetryReport`.

Clocks are injectable everywhere (:data:`MONOTONIC` is the one place in
the package allowed to touch ``time.monotonic`` — lint rule RPR103
forbids raw clock reads outside :mod:`repro.telemetry`), and
:class:`StepClock` is the deterministic fake the runtime tests drive.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, Protocol, runtime_checkable

__all__ = [
    "Clock",
    "MONOTONIC",
    "PERF_COUNTER",
    "StepClock",
    "Counter",
    "Timer",
    "SpanRecord",
    "Recorder",
    "NullRecorder",
    "InMemoryRecorder",
    "NULL_RECORDER",
]

#: A monotonic time source: ``clock() -> seconds``.
Clock = Callable[[], float]

#: The real monotonic clock.  This module is the single sanctioned
#: importer of the raw stdlib clocks (lint rule RPR103); every other
#: layer takes a :data:`Clock` and defaults to this one.
MONOTONIC: Clock = time.monotonic

#: The high-resolution clock the benchmarks inject for short intervals.
PERF_COUNTER: Clock = time.perf_counter


class StepClock:
    """A deterministic fake clock that advances a fixed step per read.

    The supervised-runtime event loop is synchronous — nothing can
    advance a manual clock *between* its clock reads — so the fake
    advances itself: every call returns the current time and moves it
    forward by ``step``.  Watchdogs and deadlines then trip after a
    bounded number of reads instead of real seconds.  ``advance()``
    jumps the clock explicitly for direct unit tests.
    """

    def __init__(self, start: float = 0.0, step: float = 0.0):
        self.now = float(start)
        self.step = float(step)
        self.reads = 0

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        self.reads += 1
        return value

    def advance(self, seconds: float) -> None:
        """Jump the clock forward without counting a read."""
        self.now += seconds


class Counter:
    """A monotonic event counter, pre-bound once and bumped from hot code.

    Plain integer arithmetic on two slots — no dict lookup, no
    allocation — so handles are safe to call per tick.  A counter is a
    *handle*: the null recorder hands out fresh unregistered instances
    (their values are read by the caller and reported nowhere), the
    in-memory recorder registers them by name.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (must be non-negative; unchecked for speed)."""
        self.value += n

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form."""
        return {"name": self.name, "value": self.value}


#: ``Timer`` bucket count: bucket ``i`` holds durations whose
#: nanosecond count has bit length ``i`` (i.e. ``[2^(i-1), 2^i) ns``),
#: with the last bucket absorbing everything >= ~134 s.
NUM_TIMER_BUCKETS = 38


class Timer:
    """A histogram timer: scalar accumulators plus fixed 2^n ns buckets.

    ``record`` touches only floats, ints, and a preallocated list slot,
    so it is allocation-free in steady state and legal inside
    ``@hot_path`` code.  Like :class:`Counter`, a timer is a pre-bound
    handle — resolve it once outside the loop, call ``record`` inside.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.buckets = [0] * NUM_TIMER_BUCKETS

    def record(self, seconds: float) -> None:
        """Fold one duration (in seconds) into the histogram."""
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        ns = int(seconds * 1e9)
        idx = ns.bit_length()
        if idx >= NUM_TIMER_BUCKETS:
            idx = NUM_TIMER_BUCKETS - 1
        self.buckets[idx] += 1

    @property
    def mean(self) -> float:
        """Mean recorded duration in seconds (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form; only non-empty buckets are materialized.

        Bucket keys are the inclusive upper bound of the bucket in
        nanoseconds (``"le_ns"``), so the histogram round-trips through
        JSON without float formatting surprises.
        """
        return {
            "name": self.name,
            "count": self.count,
            "total_seconds": self.total,
            "min_seconds": self.min if self.count else 0.0,
            "max_seconds": self.max,
            "mean_seconds": self.mean,
            "buckets": {
                str((1 << i) - 1 if i else 0): n
                for i, n in enumerate(self.buckets)
                if n
            },
        }


class SpanRecord:
    """One completed (or open) span: a named interval with attribution.

    ``parent`` is the index of the enclosing span in the recorder's span
    list (-1 at the root), which preserves the nesting tree through JSON
    without recursion.  ``tick`` and ``generation`` attribute the
    interval to simulated time; either may be ``None``.
    """

    __slots__ = ("name", "index", "parent", "depth", "start", "end", "tick", "generation")

    def __init__(
        self,
        name: str,
        index: int,
        parent: int,
        depth: int,
        start: float,
        tick: int | None = None,
        generation: int | None = None,
    ):
        self.name = name
        self.index = index
        self.parent = parent
        self.depth = depth
        self.start = start
        self.end: float | None = None
        self.tick = tick
        self.generation = generation

    @property
    def seconds(self) -> float:
        """Span duration (0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form."""
        return {
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "start": self.start,
            "end": self.end,
            "seconds": self.seconds,
            "tick": self.tick,
            "generation": self.generation,
        }


@runtime_checkable
class Recorder(Protocol):
    """What every measuring layer programs against.

    Implementations promise that :meth:`counter` returns a *working*
    :class:`Counter` (so statistics can be derived from handle values
    under any recorder) and that :attr:`clock` is cheap enough to
    pre-bind into hot loops.
    """

    #: The recorder's time source (pre-bind into locals in hot code).
    clock: Clock

    def counter(self, name: str) -> Counter:
        """A counter handle for ``name`` (always functional)."""
        ...

    def timer(self, name: str) -> Timer:
        """A timer handle for ``name`` (may be a shared no-op)."""
        ...

    def span(self, name: str, tick: int | None = None, generation: int | None = None):
        """A context manager timing a nested, attributed interval."""
        ...

    def event(self, name: str, **fields: object) -> None:
        """Record one structured event (no-op on the null recorder)."""
        ...


def _zero_clock() -> float:
    """The null recorder's clock: a constant, so no syscall in hot loops."""
    return 0.0


class _NullTimer(Timer):
    """A timer whose ``record`` does nothing; shared by all null handles."""

    __slots__ = ()

    def record(self, seconds: float) -> None:  # noqa: ARG002 - protocol no-op
        pass


class _NullSpan:
    """A reusable no-op span context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_TIMER = _NullTimer("null")
_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The zero-overhead default recorder.

    * ``clock`` returns a constant — no syscall;
    * ``timer`` returns one shared no-op handle;
    * ``span`` returns one shared no-op context manager;
    * ``event`` discards everything;
    * ``counter`` returns a **fresh, real** :class:`Counter` — callers
      that derive statistics from counter values (the engine cores)
      work identically under the null recorder; the counts are simply
      reported nowhere.

    Stateless, so one module-level instance (:data:`NULL_RECORDER`)
    serves every default.
    """

    enabled = False
    clock: Clock = staticmethod(_zero_clock)

    def counter(self, name: str) -> Counter:
        return Counter(name)

    def timer(self, name: str) -> Timer:  # noqa: ARG002 - shared no-op handle
        return _NULL_TIMER

    def span(
        self, name: str, tick: int | None = None, generation: int | None = None
    ) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **fields: object) -> None:
        return None


#: The shared default recorder every instrumented layer falls back to.
NULL_RECORDER = NullRecorder()


class _ActiveSpan:
    """Context manager driving one :class:`SpanRecord` on a recorder."""

    __slots__ = ("_recorder", "record")

    def __init__(self, recorder: "InMemoryRecorder", record: SpanRecord):
        self._recorder = recorder
        self.record = record

    def __enter__(self) -> SpanRecord:
        return self.record

    def __exit__(self, *exc: object) -> None:
        self._recorder._close_span(self.record)


class InMemoryRecorder:
    """The collecting recorder: named registries, span tree, event list.

    Counters and timers are registered by name — asking twice returns
    the same handle, so long-lived components pre-bind once and
    repeated runs accumulate (callers wanting per-run numbers read the
    handle value before and after, as ``StreamingEngineCore.run`` does).
    ``snapshot()`` returns the JSON-ready payload a
    :class:`~repro.telemetry.report.TelemetryReport` wraps.
    """

    enabled = True

    def __init__(self, clock: Clock = MONOTONIC):
        self.clock: Clock = clock
        self.counters: dict[str, Counter] = {}
        self.timers: dict[str, Timer] = {}
        self.spans: list[SpanRecord] = []
        self.events: list[dict[str, object]] = []
        self._stack: list[SpanRecord] = []

    def counter(self, name: str) -> Counter:
        handle = self.counters.get(name)
        if handle is None:
            handle = self.counters[name] = Counter(name)
        return handle

    def timer(self, name: str) -> Timer:
        handle = self.timers.get(name)
        if handle is None:
            handle = self.timers[name] = Timer(name)
        return handle

    def span(
        self, name: str, tick: int | None = None, generation: int | None = None
    ) -> _ActiveSpan:
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            name=name,
            index=len(self.spans),
            parent=parent.index if parent is not None else -1,
            depth=parent.depth + 1 if parent is not None else 0,
            start=self.clock(),
            tick=tick,
            generation=generation,
        )
        self.spans.append(record)
        self._stack.append(record)
        return _ActiveSpan(self, record)

    def _close_span(self, record: SpanRecord) -> None:
        record.end = self.clock()
        # Exits run innermost-first under normal ``with`` nesting; pop
        # defensively by identity so a leaked span cannot corrupt others.
        if self._stack and self._stack[-1] is record:
            self._stack.pop()
        elif record in self._stack:
            self._stack.remove(record)

    def event(self, name: str, **fields: object) -> None:
        entry: dict[str, object] = {"name": name, "time": self.clock()}
        entry.update(fields)
        self.events.append(entry)

    def open_spans(self) -> Iterator[SpanRecord]:
        """Spans entered but not yet exited (normally empty at rest)."""
        return iter(self._stack)

    def snapshot(self) -> dict[str, object]:
        """JSON-ready payload of everything recorded so far."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "timers": {
                name: t.to_dict() for name, t in sorted(self.timers.items())
            },
            "spans": [s.to_dict() for s in self.spans],
            "events": list(self.events),
        }
