"""Fold worker spools + the coordinator recorder into one v2 report.

The supervised runtime is the repo's stand-in for the paper's
multi-engine configuration, and its telemetry is born scattered: the
coordinator holds an :class:`~repro.telemetry.core.InMemoryRecorder`,
each worker incarnation leaves a crash-safe spool
(:mod:`repro.telemetry.spool`).  This module folds them into a single
schema-v2 :class:`~repro.telemetry.report.TelemetryReport`:

* **top-level sections are the cross-process aggregate** — counters
  summed by name, timer histograms merged bucket-wise (so `min`/`max`/
  bucket shape survive, unlike averaging means), spans concatenated
  with indices re-based per process block (the ``parent < index``
  invariant holds by construction), events on one timeline;
* **``processes`` carries the attribution** — one entry per process
  (coordinator + every worker incarnation) with its own counters and
  timers, plus identity: pid, worker index, incarnation, backend, shard
  row range, and the clock offset applied;
* **clocks are aligned via the handshake offset** — each worker sends a
  reading of its monotonic clock in its ``ready`` message and the
  supervisor timestamps the receipt with the *recorder's* clock; the
  difference shifts that incarnation's span/event times onto the
  coordinator timeline (skewed late by at most the message latency,
  bounded by the supervisor poll interval).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.telemetry.core import InMemoryRecorder
from repro.telemetry.report import (
    TelemetryError,
    TelemetryReport,
    run_metadata,
)
from repro.telemetry.spool import WorkerSpool

__all__ = [
    "ProcessTelemetry",
    "coordinator_process",
    "spool_process",
    "load_worker_spools",
    "merge_timers",
    "merge_processes",
]


@dataclass
class ProcessTelemetry:
    """One process's contribution to a merged report.

    ``clock_offset`` (seconds, coordinator minus worker clock at the
    ready handshake) is *added* to this process's span and event times
    during the merge; the coordinator contributes with offset 0.
    """

    name: str
    kind: str  # "coordinator" | "worker"
    snapshot: dict[str, object]
    pid: int | None = None
    worker: int | None = None
    incarnation: int | None = None
    backend: str | None = None
    shard: dict[str, object] | None = None
    clock_offset: float = 0.0
    spool_status: str | None = None
    spool_generation: int | None = None
    frames_skipped: int = 0

    def entry(self) -> dict[str, object]:
        """The ``processes[]`` entry: identity plus own counters/timers."""
        e: dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "pid": self.pid,
            "worker": self.worker,
            "incarnation": self.incarnation,
            "backend": self.backend,
            "shard": self.shard,
            "clock_offset_seconds": self.clock_offset,
            "counters": dict(self.snapshot.get("counters", {})),  # type: ignore[arg-type]
            "timers": dict(self.snapshot.get("timers", {})),  # type: ignore[arg-type]
            "spans": len(self.snapshot.get("spans", [])),  # type: ignore[arg-type]
            "events": len(self.snapshot.get("events", [])),  # type: ignore[arg-type]
        }
        if self.spool_status is not None:
            e["spool_status"] = self.spool_status
        if self.spool_generation is not None:
            e["spool_generation"] = self.spool_generation
        if self.frames_skipped:
            e["frames_skipped"] = self.frames_skipped
        return e


def coordinator_process(
    recorder: InMemoryRecorder, name: str = "coordinator"
) -> ProcessTelemetry:
    """Wrap the supervisor's own recorder as the offset-zero process."""
    return ProcessTelemetry(
        name=name,
        kind="coordinator",
        snapshot=recorder.snapshot(),
        pid=os.getpid(),
    )


def spool_process(
    spool: WorkerSpool, clock_offset: float = 0.0
) -> ProcessTelemetry:
    """Turn one parsed worker spool into a :class:`ProcessTelemetry`.

    Identity comes from the spool's ``open`` frame; a worker that died
    before its first snapshot still yields a process entry (with empty
    sections), so the merged report accounts for every life.
    """
    meta = spool.meta
    worker = meta.get("worker")
    incarnation = meta.get("incarnation")
    name = f"worker-{worker}.{incarnation}"
    shard = meta.get("shard")
    return ProcessTelemetry(
        name=name,
        kind="worker",
        snapshot=dict(spool.snapshot or {}),
        pid=meta.get("pid") if isinstance(meta.get("pid"), int) else None,
        worker=worker if isinstance(worker, int) else None,
        incarnation=incarnation if isinstance(incarnation, int) else None,
        backend=meta.get("backend") if isinstance(meta.get("backend"), str) else None,
        shard=dict(shard) if isinstance(shard, Mapping) else None,
        clock_offset=clock_offset,
        spool_status=spool.status,
        spool_generation=spool.generation,
        frames_skipped=spool.skipped,
    )


def load_worker_spools(
    directory: str | Path,
    offsets: Mapping[tuple[int, int], float] | None = None,
) -> list[ProcessTelemetry]:
    """Parse every worker spool under ``directory`` (sorted by filename).

    ``offsets`` maps ``(worker, incarnation)`` to the handshake clock
    offset; missing entries fall back to 0.  Unusable spool files
    (no intact open frame) are skipped — a merge must not fail a run
    that already survived its workers dying.
    """
    offsets = offsets or {}
    processes: list[ProcessTelemetry] = []
    root = Path(directory)
    if not root.is_dir():
        return processes
    for path in sorted(root.glob("worker-*.jsonl")):
        try:
            spool = WorkerSpool.load(path)
        except TelemetryError:
            continue
        key = (spool.meta.get("worker"), spool.meta.get("incarnation"))
        offset = offsets.get(key, 0.0)  # type: ignore[arg-type]
        processes.append(spool_process(spool, clock_offset=offset))
    return processes


def merge_timers(histograms: list[Mapping[str, object]]) -> dict[str, object]:
    """Merge timer histograms exactly: sums, extrema, bucket-wise add.

    This is the honest cross-process aggregate — the merged mean is
    recomputed from the merged totals, never averaged from per-process
    means (which would weight a 2-generation incarnation equal to a
    200-generation one).
    """
    count = 0
    total = 0.0
    lo = float("inf")
    hi = 0.0
    buckets: dict[str, int] = {}
    name = ""
    for t in histograms:
        name = str(t.get("name", name)) or name
        n = int(t["count"])  # type: ignore[index]
        count += n
        total += float(t["total_seconds"])  # type: ignore[index]
        if n:
            lo = min(lo, float(t["min_seconds"]))  # type: ignore[index]
            hi = max(hi, float(t["max_seconds"]))  # type: ignore[index]
        for key, bn in dict(t.get("buckets", {})).items():  # type: ignore[arg-type]
            buckets[str(key)] = buckets.get(str(key), 0) + int(bn)
    return {
        "name": name,
        "count": count,
        "total_seconds": total,
        "min_seconds": lo if count else 0.0,
        "max_seconds": hi,
        "mean_seconds": total / count if count else 0.0,
        "buckets": buckets,
    }


def _shifted_spans(
    proc: ProcessTelemetry, base_index: int
) -> list[dict[str, object]]:
    """Re-based, clock-aligned copies of one process's spans.

    Indices shift by ``base_index`` and parents follow, so the merged
    list preserves the v1 invariant (parent is -1 or an earlier index)
    per process block; ``process`` tags every span with its origin.
    """
    out: list[dict[str, object]] = []
    offset = proc.clock_offset
    for s in proc.snapshot.get("spans", []):  # type: ignore[union-attr]
        span = dict(s)
        span["index"] = int(span["index"]) + base_index
        parent = int(span.get("parent", -1))
        span["parent"] = parent + base_index if parent >= 0 else -1
        span["start"] = float(span["start"]) + offset
        if span.get("end") is not None:
            span["end"] = float(span["end"]) + offset
        span["process"] = proc.name
        out.append(span)
    return out


def _shifted_events(proc: ProcessTelemetry) -> list[dict[str, object]]:
    """Clock-aligned, origin-tagged copies of one process's events."""
    out: list[dict[str, object]] = []
    for e in proc.snapshot.get("events", []):  # type: ignore[union-attr]
        event = dict(e)
        if isinstance(event.get("time"), (int, float)):
            event["time"] = float(event["time"]) + proc.clock_offset
        event["process"] = proc.name
        out.append(event)
    return out


def merge_processes(
    processes: list[ProcessTelemetry],
    meta: Mapping[str, object] | None = None,
    producer: str = "repro.telemetry.merge",
) -> TelemetryReport:
    """Fold process contributions into one schema-v2 report.

    Top-level counters/timers are exact aggregates; spans and events
    are concatenated on the aligned timeline with per-process tags;
    ``processes`` keeps the per-process attribution.  Events are sorted
    by aligned time (ties keep process order) so the merged stream
    reads as one timeline.
    """
    counters: dict[str, int] = {}
    timer_parts: dict[str, list[Mapping[str, object]]] = {}
    spans: list[dict[str, object]] = []
    events: list[dict[str, object]] = []
    for proc in processes:
        proc_counters = dict(proc.snapshot.get("counters", {}))  # type: ignore[arg-type]
        for name, value in proc_counters.items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, t in dict(proc.snapshot.get("timers", {})).items():  # type: ignore[arg-type]
            timer_parts.setdefault(name, []).append(t)
        spans.extend(_shifted_spans(proc, base_index=len(spans)))
        events.extend(_shifted_events(proc))
    events.sort(
        key=lambda e: e["time"] if isinstance(e.get("time"), (int, float)) else 0.0
    )
    merged_meta = dict(meta or {})
    if "run" not in merged_meta:
        merged_meta["run"] = run_metadata(producer)
    return TelemetryReport(
        counters=dict(sorted(counters.items())),
        timers={name: merge_timers(parts) for name, parts in sorted(timer_parts.items())},
        spans=spans,
        events=events,
        meta=merged_meta,
        processes=[p.entry() for p in processes],
    )
