"""Crash-safe per-worker telemetry spools: append-only JSONL frames.

The supervised runtime's workers die — that is the point of the
supervisor — so their telemetry cannot live in process memory the way
the coordinator's :class:`~repro.telemetry.core.InMemoryRecorder` does.
Each worker incarnation instead *spools* its recorder snapshots to an
append-only JSONL file with the same durability discipline as
:class:`~repro.resilience.checkpoint.CheckpointStore`:

* every frame is written, flushed, and **fsync'd** before the call
  returns, so a worker killed at any instant loses at most the frame it
  was mid-writing;
* frames carry a CRC-32 over their canonical body JSON, so a rotted
  line is *detected* at load time instead of silently merging garbage;
* the reader is **torn-tail tolerant**: a truncated or unparsable final
  line — the signature of a crash mid-append — is dropped without
  complaint, and corrupt interior frames are skipped and counted.

A spool holds one ``open`` frame (who am I: worker, incarnation, pid,
backend, shard geometry) followed by ``snapshot`` frames (a full
recorder snapshot, written at every checkpoint and at exit).  Snapshots
are cumulative, so the **last intact snapshot** is the worker's best
recorded state — exactly the recovery rule checkpoints use.  The merger
(:mod:`repro.telemetry.merge`) folds spools into a multi-process
:class:`~repro.telemetry.report.TelemetryReport` v2.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.report import TelemetryError

__all__ = [
    "SPOOL_SCHEMA",
    "SPOOL_VERSION",
    "FRAME_OPEN",
    "FRAME_SNAPSHOT",
    "SpoolFrame",
    "SpoolWriter",
    "read_frames",
    "WorkerSpool",
    "worker_spool_path",
]

#: Spool frame schema identity (stamped into every ``open`` frame).
SPOOL_SCHEMA = "repro-telemetry-spool"
#: Bump when the frame layout changes incompatibly.
SPOOL_VERSION = 1

#: Frame kinds the runtime writes.
FRAME_OPEN = "open"
FRAME_SNAPSHOT = "snapshot"


def _body_crc(body: dict[str, object]) -> int:
    """CRC-32 over the canonical (sorted-key) JSON encoding of ``body``."""
    return zlib.crc32(json.dumps(body, sort_keys=True).encode("utf-8"))


def worker_spool_path(directory: str | Path, worker: int, incarnation: int) -> Path:
    """The canonical spool file for one worker incarnation.

    One file per *incarnation* — a restarted worker never appends to its
    dead predecessor's spool, so a torn tail stays confined to the life
    that tore it and the merger sees each life as its own process.
    """
    return Path(directory) / f"worker-{worker:02d}.{incarnation:02d}.jsonl"


@dataclass(frozen=True)
class SpoolFrame:
    """One intact frame read back from a spool."""

    kind: str
    body: dict[str, object] = field(repr=False)


class SpoolWriter:
    """Append-only, fsync-per-frame JSONL writer for one worker's telemetry.

    Opens the file lazily in append mode (so a restarted *writer* on the
    same path extends rather than truncates) and fsyncs the directory
    entry once after the first frame lands, mirroring the checkpoint
    store's rename-durability rule.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.frames_written = 0
        self._fh = open(self.path, "ab")

    def append(self, kind: str, body: dict[str, object]) -> None:
        """Write one frame durably: encode, append, flush, fsync.

        Raises
        ------
        TelemetryError
            When the body is not JSON-serializable or the write fails.
        """
        try:
            line = json.dumps(
                {"kind": kind, "crc": _body_crc(body), "body": body},
                sort_keys=True,
            )
        except (TypeError, ValueError) as exc:
            raise TelemetryError(
                f"spool frame {kind!r} is not JSON-serializable: {exc}"
            ) from exc
        try:
            self._fh.write(line.encode("utf-8") + b"\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError as exc:
            raise TelemetryError(
                f"cannot append to spool {self.path}: {exc}"
            ) from exc
        if self.frames_written == 0:
            _fsync_dir(self.path.parent)
        self.frames_written += 1

    def open_frame(self, **meta: object) -> None:
        """Write the identifying ``open`` frame (schema-stamped)."""
        body: dict[str, object] = {
            "schema": SPOOL_SCHEMA,
            "schema_version": SPOOL_VERSION,
        }
        body.update(meta)
        self.append(FRAME_OPEN, body)

    def snapshot_frame(
        self, snapshot: dict[str, object], status: str, generation: int
    ) -> None:
        """Write one cumulative recorder snapshot frame."""
        self.append(
            FRAME_SNAPSHOT,
            {"status": status, "generation": generation, "snapshot": snapshot},
        )

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "SpoolWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _fsync_dir(directory: Path) -> None:
    """Best-effort fsync of a directory entry (platforms without dir fds skip)."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def read_frames(path: str | Path) -> tuple[list[SpoolFrame], int]:
    """Read every intact frame from a spool; returns ``(frames, skipped)``.

    A torn **tail** (truncated or unparsable final line — the normal
    crash signature of an append interrupted mid-write) is dropped
    silently and does not count as skipped.  Interior lines that fail to
    parse or whose CRC does not match their body are skipped and
    counted, so callers can surface rot without refusing the rest.

    Raises
    ------
    TelemetryError
        When the file cannot be read at all.
    """
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        raise TelemetryError(f"cannot read spool {path}: {exc}") from exc
    lines = raw.split(b"\n")
    # A well-formed spool ends with a newline, leaving one empty trailer;
    # anything else in the final slot is a torn tail and is dropped.
    torn_tail = lines[-1] != b""
    lines = lines[:-1]
    frames: list[SpoolFrame] = []
    skipped = 0
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        last = i == len(lines) - 1
        try:
            entry = json.loads(line)
        except (ValueError, UnicodeDecodeError):
            if last and not torn_tail:
                continue  # torn tail variant: newline landed, body did not
            skipped += 1
            continue
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("kind"), str)
            or not isinstance(entry.get("body"), dict)
            or entry.get("crc") != _body_crc(entry["body"])
        ):
            skipped += 1
            continue
        frames.append(SpoolFrame(kind=entry["kind"], body=entry["body"]))
    return frames, skipped


@dataclass(frozen=True)
class WorkerSpool:
    """One parsed worker spool: identity plus the last intact snapshot.

    ``meta`` is the ``open`` frame's body; ``snapshot`` is the newest
    intact ``snapshot`` frame's recorder payload (``None`` when the
    worker died before its first checkpoint).  ``skipped`` counts
    corrupt interior frames the reader dropped.
    """

    path: Path
    meta: dict[str, object]
    snapshot: dict[str, object] | None
    status: str | None
    generation: int | None
    skipped: int

    @classmethod
    def load(cls, path: str | Path) -> "WorkerSpool":
        """Parse one spool file (raises :class:`TelemetryError` if unusable).

        Unusable means unreadable or missing an intact ``open`` frame —
        without identity the frames cannot be attributed to a process.
        """
        frames, skipped = read_frames(path)
        opens = [f for f in frames if f.kind == FRAME_OPEN]
        if not opens:
            raise TelemetryError(f"spool {path} has no intact open frame")
        snapshots = [f for f in frames if f.kind == FRAME_SNAPSHOT]
        last = snapshots[-1] if snapshots else None
        snapshot = None
        status: str | None = None
        generation: int | None = None
        if last is not None:
            snap = last.body.get("snapshot")
            snapshot = snap if isinstance(snap, dict) else None
            raw_status = last.body.get("status")
            status = raw_status if isinstance(raw_status, str) else None
            raw_gen = last.body.get("generation")
            generation = raw_gen if isinstance(raw_gen, int) else None
        return cls(
            path=Path(path),
            meta=dict(opens[0].body),
            snapshot=snapshot,
            status=status,
            generation=generation,
            skipped=skipped,
        )
