"""Schema-versioned lint baseline: burn down, never grow.

``repro lint --strict`` fails on any finding *not* recorded in the
committed baseline file (``.repro-lint-baseline.json`` by default) and
also on any baseline entry that no longer matches a finding — stale
entries mean debt was paid off, so the file must shrink to match.  The
two failure directions together make the baseline a ratchet.

Entries are matched on ``(path, rule)`` rather than exact line numbers,
so unrelated edits that shift lines do not churn the file; one entry
covers any number of findings of that rule in that file, which is why
the acceptance bar is a *small* baseline, not a precise one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic

__all__ = [
    "BASELINE_SCHEMA",
    "BASELINE_VERSION",
    "Baseline",
    "BaselineEntry",
    "baseline_from_diagnostics",
    "load_baseline",
    "save_baseline",
]

BASELINE_SCHEMA = "repro-lint-baseline"
BASELINE_VERSION = 1


@dataclass(frozen=True, order=True)
class BaselineEntry:
    """One accepted-debt record: ``rule`` findings allowed in ``path``."""

    path: str
    rule: str

    def to_dict(self) -> dict[str, str]:
        """JSON payload for this entry."""
        return {"path": self.path, "rule": self.rule}


@dataclass(frozen=True)
class Baseline:
    """An accepted-findings set with ratchet queries.

    Attributes
    ----------
    entries:
        The accepted ``(path, rule)`` pairs, sorted.
    """

    entries: tuple[BaselineEntry, ...] = ()

    def covers(self, diagnostic: Diagnostic) -> bool:
        """Whether ``diagnostic`` is accepted debt."""
        return BaselineEntry(diagnostic.path, diagnostic.rule) in set(self.entries)

    def fresh_findings(self, diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
        """Diagnostics not covered by any entry (the strict failures)."""
        accepted = set(self.entries)
        return [
            d
            for d in diagnostics
            if BaselineEntry(d.path, d.rule) not in accepted
        ]

    def stale_entries(self, diagnostics: Iterable[Diagnostic]) -> list[BaselineEntry]:
        """Entries matching no current finding (debt already paid off)."""
        live = {BaselineEntry(d.path, d.rule) for d in diagnostics}
        return [entry for entry in self.entries if entry not in live]

    def to_dict(self) -> dict[str, object]:
        """JSON payload (schema + version + sorted entries)."""
        return {
            "schema": BASELINE_SCHEMA,
            "version": BASELINE_VERSION,
            "entries": [entry.to_dict() for entry in sorted(set(self.entries))],
        }


def baseline_from_diagnostics(diagnostics: Iterable[Diagnostic]) -> Baseline:
    """Collapse findings to a deduplicated ``(path, rule)`` baseline."""
    entries = sorted({BaselineEntry(d.path, d.rule) for d in diagnostics})
    return Baseline(entries=tuple(entries))


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline.

    Raises
    ------
    ValueError
        on malformed JSON, a wrong ``schema`` marker, or an unknown
        ``version`` — strict runs must not silently ignore debt records
        they cannot interpret.
    """
    if not path.exists():
        return Baseline()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline {path} is missing the {BASELINE_SCHEMA!r} schema marker"
        )
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has schema version {version!r}; this tool "
            f"reads version {BASELINE_VERSION} — regenerate with "
            "'repro lint --write-baseline'"
        )
    raw = payload.get("entries", [])
    if not isinstance(raw, list):
        raise ValueError(f"baseline {path}: 'entries' must be a list")
    entries = []
    for item in raw:
        if (
            not isinstance(item, dict)
            or not isinstance(item.get("path"), str)
            or not isinstance(item.get("rule"), str)
        ):
            raise ValueError(
                f"baseline {path}: each entry needs string 'path' and 'rule'"
            )
        entries.append(BaselineEntry(path=item["path"], rule=item["rule"]))
    return Baseline(entries=tuple(sorted(set(entries))))


def save_baseline(path: Path, baseline: Baseline) -> None:
    """Write ``baseline`` to ``path`` (sorted, trailing newline)."""
    path.write_text(
        json.dumps(baseline.to_dict(), indent=2) + "\n", encoding="utf-8"
    )
