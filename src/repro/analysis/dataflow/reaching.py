"""Reaching definitions over the statement-level CFG.

The framework distinguishes three definition kinds, because the rules
care about the difference between *rebinding* a name and *mutating* the
storage it points to:

``bind``
    ``x = ...``, ``self.buf = ...``, a ``for`` target, a ``with ... as``
    — the name now refers to (possibly) different storage, so previous
    definitions are killed.  The double-buffer swap
    ``src, dst = dst, src`` is two binds.
``mutate``
    ``x[...] = ...``, ``self.buf[i] = ...``, ``np.some_ufunc(..., out=x)``,
    ``np.copyto(x, ...)`` — the *contents* change but the binding does
    not, so nothing is killed (a weak update).
``aug``
    ``x[...] |= ...`` and friends — an in-place element-wise update that
    reads and writes the same storage in one statement.  Tracked
    separately so rules can exempt accumulation patterns.
``param``
    A function parameter: a synthetic definition at the CFG entry.

Names are tracked as plain identifiers (``"stream"``) or two-component
dotted paths (``"self._front"``); deeper chains collapse to their
innermost two components, which is exactly the granularity at which the
engines hold their frame buffers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.analysis.dataflow.cfg import CFG

__all__ = [
    "Definition",
    "ReachingDefinitions",
    "stmt_defs",
    "stmt_uses",
    "dotted_name",
]


@dataclass(frozen=True)
class Definition:
    """One definition site: ``name`` defined at CFG node ``node``."""

    name: str
    node: int
    kind: str  # "bind" | "mutate" | "aug" | "param"


def dotted_name(expr: ast.expr) -> str | None:
    """``Name`` → id; ``a.b`` → ``"a.b"``; ``a.b.c`` → ``"a.b"``; else None."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name):
            return f"{expr.value.id}.{expr.attr}"
        return dotted_name(expr.value)
    return None


#: numpy-style calls whose first positional argument is written in place.
_FIRST_ARG_MUTATORS = {"copyto", "put", "place", "putmask"}


def _header_parts(
    stmt: ast.stmt,
) -> tuple[list[ast.expr], list[ast.expr]]:
    """(store targets, evaluated expressions) belonging to this node.

    Compound statements contribute only their header — their bodies are
    separate CFG nodes.
    """
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets), [stmt.value]
    if isinstance(stmt, ast.AugAssign):
        return [stmt.target], [stmt.value]
    if isinstance(stmt, ast.AnnAssign):
        return ([stmt.target], [stmt.value]) if stmt.value else ([], [])
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target], [stmt.iter]
    if isinstance(stmt, (ast.While, ast.If)):
        return [], [stmt.test]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [i.optional_vars for i in stmt.items if i.optional_vars]
        return targets, [i.context_expr for i in stmt.items]
    if isinstance(stmt, ast.Expr):
        return [], [stmt.value]
    if isinstance(stmt, ast.Return):
        return [], [stmt.value] if stmt.value else []
    if isinstance(stmt, ast.Raise):
        return [], [e for e in (stmt.exc, stmt.cause) if e]
    if isinstance(stmt, ast.Assert):
        return [], [e for e in (stmt.test, stmt.msg) if e]
    if isinstance(stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return [], []
    # Fallback for simple statements (Delete, Global, Pass, ...).
    return [], [n for n in ast.iter_child_nodes(stmt) if isinstance(n, ast.expr)]


def _target_defs(target: ast.expr, aug: bool = False) -> Iterator[tuple[str, str]]:
    kind_whole = "aug" if aug else "bind"
    kind_part = "aug" if aug else "mutate"
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_defs(elt, aug)
    elif isinstance(target, ast.Starred):
        yield from _target_defs(target.value, aug)
    elif isinstance(target, ast.Name):
        yield target.id, kind_whole
    elif isinstance(target, ast.Attribute):
        name = dotted_name(target)
        if name is None:
            return
        # `self.x = ...` rebinds the attribute path itself; `self.a.b = ...`
        # collapses to a mutation of `self.a`.
        if isinstance(target.value, ast.Name):
            yield name, kind_whole
        else:
            yield name, kind_part
    elif isinstance(target, ast.Subscript):
        name = dotted_name(target.value)
        if name is not None:
            yield name, kind_part


def _call_mutations(exprs: Iterable[ast.expr]) -> Iterator[tuple[str, str, ast.expr]]:
    """(name, "mutate", target expr) for ``out=``/``np.copyto``-style writes."""
    for root in exprs:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg == "out":
                    name = dotted_name(kw.value)
                    if name is not None:
                        yield name, "mutate", kw.value
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _FIRST_ARG_MUTATORS
                and node.args
            ):
                name = dotted_name(node.args[0])
                if name is not None:
                    yield name, "mutate", node.args[0]


def stmt_defs(stmt: ast.stmt) -> list[tuple[str, str]]:
    """Definitions ``(name, kind)`` made by this statement's header."""
    targets, exprs = _header_parts(stmt)
    out: list[tuple[str, str]] = []
    aug = isinstance(stmt, ast.AugAssign)
    for target in targets:
        out.extend(_target_defs(target, aug=aug))
    out.extend((name, kind) for name, kind, _ in _call_mutations(exprs))
    for root in exprs:
        for node in ast.walk(root):
            if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
                out.append((node.target.id, "bind"))
    if isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            out.append(((alias.asname or alias.name).split(".")[0], "bind"))
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        out.append((stmt.name, "bind"))
    return out


class _UseCollector(ast.NodeVisitor):
    def __init__(self, excluded: set[int]):
        self.uses: set[str] = set()
        self._excluded = excluded

    def _add_chain(self, node: ast.expr) -> None:
        """Record ``x`` and ``x.y`` for an attribute chain rooted at ``x``."""
        name = dotted_name(node)
        if name is not None and name != "self":
            self.uses.add(name)
        base = name.split(".")[0] if name else None
        if base and base != "self":
            self.uses.add(base)

    def visit_Name(self, node: ast.Name) -> None:
        if id(node) in self._excluded or not isinstance(node.ctx, ast.Load):
            return
        if node.id != "self":
            self.uses.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if id(node) in self._excluded:
            return
        self._add_chain(node)
        # Recurse only into non-name parts (e.g. subscript indices below).
        if not isinstance(node.value, (ast.Name, ast.Attribute)):
            self.visit(node.value)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if id(node) in self._excluded:
            self.visit(node.slice)  # the index is still evaluated
            return
        self.visit(node.value)
        self.visit(node.slice)


def _exclude_target(
    target: ast.expr, excluded: set[int], roots: list[ast.expr]
) -> None:
    """Exclude the written name chain of a store target, keep its indices.

    The base of ``x[i] = ...`` is a write, but ``i`` is still read — so
    subscript slices are collected as extra use roots instead of being
    excluded along with the chain.
    """
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _exclude_target(elt, excluded, roots)
    elif isinstance(target, ast.Starred):
        _exclude_target(target.value, excluded, roots)
    elif isinstance(target, ast.Subscript):
        roots.append(target.slice)
        _exclude_target(target.value, excluded, roots)
    elif isinstance(target, (ast.Name, ast.Attribute)):
        for node in ast.walk(target):
            if isinstance(node, (ast.Name, ast.Attribute)):
                excluded.add(id(node))


def stmt_uses(stmt: ast.stmt) -> set[str]:
    """Names *read* by this statement's header.

    Store-target bases (the ``x`` of ``x[...] = ...``) and ``out=`` /
    ``np.copyto`` write arguments are writes, not reads, and are
    excluded; subscript indices of store targets are still reads.
    """
    targets, exprs = _header_parts(stmt)
    excluded: set[int] = set()
    roots: list[ast.expr] = list(exprs)
    for target in targets:
        _exclude_target(target, excluded, roots)
    for _, _, expr in _call_mutations(exprs):
        for node in ast.walk(expr):
            excluded.add(id(node))
    collector = _UseCollector(excluded)
    for root in roots:
        collector.visit(root)
    return collector.uses


class ReachingDefinitions:
    """Worklist reaching-definitions over a :class:`CFG`.

    Parameters
    ----------
    cfg:
        The graph to analyze.
    params:
        Names defined on entry (function parameters).
    """

    def __init__(self, cfg: CFG, params: Iterable[str] = ()):
        self.cfg = cfg
        self._gen: dict[int, set[Definition]] = {n.index: set() for n in cfg.nodes}
        by_name: dict[str, set[Definition]] = {}
        binds: dict[int, set[str]] = {n.index: set() for n in cfg.nodes}
        for name in params:
            d = Definition(name=name, node=cfg.entry, kind="param")
            self._gen[cfg.entry].add(d)
            by_name.setdefault(name, set()).add(d)
            binds[cfg.entry].add(name)
        for node in cfg.nodes:
            if node.stmt is None:
                continue
            for name, kind in stmt_defs(node.stmt):
                d = Definition(name=name, node=node.index, kind=kind)
                self._gen[node.index].add(d)
                by_name.setdefault(name, set()).add(d)
                if kind == "bind":
                    binds[node.index].add(name)
        self._kill: dict[int, set[Definition]] = {}
        for node in cfg.nodes:
            killed: set[Definition] = set()
            for name in binds[node.index]:
                killed |= by_name.get(name, set())
            self._kill[node.index] = killed - self._gen[node.index]
        self._in: dict[int, set[Definition]] = {n.index: set() for n in cfg.nodes}
        self._out: dict[int, set[Definition]] = {
            n.index: set(self._gen[n.index]) for n in cfg.nodes
        }
        work = [n.index for n in cfg.nodes]
        while work:
            idx = work.pop()
            node = cfg.nodes[idx]
            new_in: set[Definition] = set()
            for p in node.pred:
                new_in |= self._out[p]
            self._in[idx] = new_in
            new_out = self._gen[idx] | (new_in - self._kill[idx])
            if new_out != self._out[idx]:
                self._out[idx] = new_out
                work.extend(node.succ)

    def reaching_in(self, index: int) -> frozenset[Definition]:
        """Definitions reaching the *entry* of node ``index``."""
        return frozenset(self._in[index])

    def reaching_out(self, index: int) -> frozenset[Definition]:
        """Definitions live at the *exit* of node ``index``."""
        return frozenset(self._out[index])

    def definitions(self) -> frozenset[Definition]:
        """Every definition in the graph (including parameters)."""
        out: set[Definition] = set()
        for gen in self._gen.values():
            out |= gen
        return frozenset(out)

    def def_stmt(self, definition: Definition) -> ast.stmt | None:
        """The statement a definition was made at (None for parameters)."""
        return self.cfg.nodes[definition.node].stmt
