"""Whole-program dataflow layer under the lint rules.

Three small pieces, composed by the ``RPR101``/``RPR102``/``RPR110``
rule families:

* :mod:`repro.analysis.dataflow.cfg` — statement-level intraprocedural
  control-flow graphs over :mod:`ast`, with loop back edges, so rules
  can reason about *paths*, not just syntax;
* :mod:`repro.analysis.dataflow.reaching` — classic reaching-definitions
  over those CFGs, distinguishing rebinding definitions (which kill)
  from in-place mutations like ``buf[...] = x`` or ``np.copyto(buf, x)``
  (which do not);
* :mod:`repro.analysis.dataflow.project` — a project graph (modules,
  imports, classes and resolved base classes, call edges within
  ``repro.*``) that lets a rule checking one file see facts defined in
  another, e.g. that a class three hops up the hierarchy derives from
  ``StreamingEngineCore``.

None of this executes repo code: everything is computed from parsed
sources, so the linter stays safe to run on broken trees.
"""

from repro.analysis.dataflow.cfg import CFG, CFGNode, build_cfg
from repro.analysis.dataflow.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectGraph,
)
from repro.analysis.dataflow.reaching import (
    Definition,
    ReachingDefinitions,
    stmt_defs,
    stmt_uses,
)

__all__ = [
    "CFG",
    "CFGNode",
    "build_cfg",
    "Definition",
    "ReachingDefinitions",
    "stmt_defs",
    "stmt_uses",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectGraph",
]
