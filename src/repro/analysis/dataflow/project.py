"""The project graph: cross-file facts for the dataflow rules.

Built once per lint run from the already-parsed module trees, the graph
records what a single-file rule cannot see:

* module identity — ``src/repro/lgca/bitplane.py`` *is* module
  ``repro.lgca.bitplane``, so imports can be resolved to real modules;
* per-module import tables (``from x import y as z`` → ``z: x.y``);
* every class with its *resolved* base names and method set, so
  ``derives_from`` can walk inheritance chains across files;
* call edges within the project: bare calls resolved through the import
  table and ``self.method()`` calls resolved within the class.

The graph never imports or executes repo code — it is pure syntax — and
it serializes to a schema-versioned JSON document keyed by per-file
content digests, so CI can cache it between jobs and reuse every entry
whose source is unchanged (:meth:`ProjectGraph.load_or_build`).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import Iterable, Iterator

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectGraph",
    "PROJECT_GRAPH_VERSION",
    "module_name_for_path",
]

#: Schema version of the serialized graph (bump on format change).
PROJECT_GRAPH_VERSION = 1


def module_name_for_path(path: str) -> str:
    """Dotted module name for a source path.

    Paths under a ``repro`` package directory map to real module names
    (``src/repro/lgca/hpp.py`` → ``repro.lgca.hpp``); anything else
    (fixtures, scripts) gets its stem as a standalone module name.
    """
    parts = PurePath(path).parts
    if "repro" in parts:
        sub = parts[parts.index("repro"):]
        if sub[-1] == "__init__.py":
            sub = sub[:-1]
        else:
            sub = sub[:-1] + (PurePath(sub[-1]).stem,)
        return ".".join(sub)
    return PurePath(path).stem


def _decorator_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method as the graph sees it."""

    name: str
    qualname: str  # "func" or "Class.method"
    module: str
    lineno: int
    decorators: tuple[str, ...] = ()
    calls: tuple[str, ...] = ()  # resolved callee qualnames (best effort)

    def to_dict(self) -> dict[str, object]:
        """JSON form (schema pinned by the project-graph version)."""
        return {
            "name": self.name,
            "qualname": self.qualname,
            "module": self.module,
            "lineno": self.lineno,
            "decorators": list(self.decorators),
            "calls": list(self.calls),
        }


@dataclass(frozen=True)
class ClassInfo:
    """One class with resolved base names and its method table."""

    name: str
    module: str
    lineno: int
    bases: tuple[str, ...] = ()  # resolved where possible, else as written
    methods: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, object]:
        """JSON form (schema pinned by the project-graph version)."""
        return {
            "name": self.name,
            "module": self.module,
            "lineno": self.lineno,
            "bases": list(self.bases),
            "methods": list(self.methods),
        }


@dataclass
class ModuleInfo:
    """Everything the graph knows about one module."""

    name: str
    path: str
    digest: str
    imports: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """JSON form (schema pinned by the project-graph version)."""
        return {
            "name": self.name,
            "path": self.path,
            "digest": self.digest,
            "imports": dict(sorted(self.imports.items())),
            "classes": {k: c.to_dict() for k, c in sorted(self.classes.items())},
            "functions": {k: f.to_dict() for k, f in sorted(self.functions.items())},
        }


def source_digest(source: str) -> str:
    """Content digest used for cache validation."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


class _CallCollector(ast.NodeVisitor):
    """Best-effort callee names: bare calls and ``self.method()`` calls."""

    def __init__(self) -> None:
        self.bare: list[str] = []
        self.self_methods: list[str] = []

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self.bare.append(func.id)
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            self.self_methods.append(func.attr)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs own their calls

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]


class ProjectGraph:
    """Modules, classes, functions, and edges — queryable by any rule."""

    def __init__(self, modules: dict[str, ModuleInfo]):
        self.modules = modules
        self._by_path = {m.path: m.name for m in modules.values()}
        self._classes_by_name: dict[str, list[ClassInfo]] = {}
        for mod in modules.values():
            for cls in mod.classes.values():
                self._classes_by_name.setdefault(cls.name, []).append(cls)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_sources(
        cls, items: Iterable[tuple[str, str, ast.Module]]
    ) -> "ProjectGraph":
        """Build from ``(path, source, tree)`` triples (one per file)."""
        modules: dict[str, ModuleInfo] = {}
        for path, source, tree in items:
            info = _build_module(path, source, tree)
            modules[info.name] = info
        graph = cls(modules)
        graph._resolve_edges()
        return graph

    def _resolve_edges(self) -> None:
        """Second pass: resolve base names and call targets across modules."""
        for mod in self.modules.values():
            local_defs = set(mod.classes) | set(mod.functions)
            resolved_classes: dict[str, ClassInfo] = {}
            for cname, cinfo in mod.classes.items():
                bases = tuple(
                    self._resolve_name(base, mod, local_defs) for base in cinfo.bases
                )
                resolved_classes[cname] = ClassInfo(
                    name=cinfo.name,
                    module=cinfo.module,
                    lineno=cinfo.lineno,
                    bases=bases,
                    methods=cinfo.methods,
                )
            mod.classes = resolved_classes
            resolved_fns: dict[str, FunctionInfo] = {}
            for fname, finfo in mod.functions.items():
                calls = tuple(
                    self._resolve_name(c, mod, local_defs) for c in finfo.calls
                )
                resolved_fns[fname] = FunctionInfo(
                    name=finfo.name,
                    qualname=finfo.qualname,
                    module=finfo.module,
                    lineno=finfo.lineno,
                    decorators=finfo.decorators,
                    calls=calls,
                )
            mod.functions = resolved_fns

    def _resolve_name(self, name: str, mod: ModuleInfo, local_defs: set[str]) -> str:
        head = name.split(".", 1)[0]
        if head in local_defs:
            return f"{mod.name}.{name}"
        if head in mod.imports:
            target = mod.imports[head]
            rest = name[len(head):]
            return f"{target}{rest}"
        return name

    # -- queries ----------------------------------------------------------------

    def module_for_path(self, path: str) -> ModuleInfo | None:
        """The module built from ``path``, if any."""
        name = self._by_path.get(str(path))
        return self.modules.get(name) if name else None

    def classes_named(self, name: str) -> tuple[ClassInfo, ...]:
        """Every class in the project with this bare name."""
        return tuple(self._classes_by_name.get(name, ()))

    def resolve_class(self, dotted: str) -> ClassInfo | None:
        """Look a class up by resolved dotted name, or bare name if unique."""
        module, _, cname = dotted.rpartition(".")
        if module and module in self.modules:
            return self.modules[module].classes.get(cname)
        candidates = self.classes_named(dotted.split(".")[-1])
        return candidates[0] if len(candidates) == 1 else None

    def derives_from(self, cls: ClassInfo, root: str) -> bool:
        """Whether ``cls`` transitively derives from a class named ``root``.

        ``root`` is matched against the *last component* of each resolved
        base name, so both ``StreamingEngineCore`` and
        ``repro.engines.streaming_core.StreamingEngineCore`` match.
        """
        seen: set[str] = set()
        work = list(cls.bases)
        while work:
            base = work.pop()
            if base in seen:
                continue
            seen.add(base)
            if base.split(".")[-1] == root:
                return True
            parent = self.resolve_class(base)
            if parent is not None:
                work.extend(parent.bases)
        return False

    def iter_classes(self) -> Iterator[ClassInfo]:
        """Every class in every module."""
        for mod in self.modules.values():
            yield from mod.classes.values()

    # -- serialization / caching ------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """Schema-versioned JSON form, stable across runs."""
        return {
            "schema": "repro-lint-project",
            "version": PROJECT_GRAPH_VERSION,
            "modules": {
                name: mod.to_dict() for name, mod in sorted(self.modules.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "ProjectGraph":
        """Rebuild a graph from :meth:`to_dict` output.

        Raises
        ------
        ValueError
            on a payload with the wrong schema marker or version.
        """
        if payload.get("schema") != "repro-lint-project":
            raise ValueError("not a repro-lint-project document")
        if payload.get("version") != PROJECT_GRAPH_VERSION:
            raise ValueError(
                f"unsupported project-graph version {payload.get('version')!r} "
                f"(expected {PROJECT_GRAPH_VERSION})"
            )
        modules: dict[str, ModuleInfo] = {}
        raw_modules = payload.get("modules")
        if not isinstance(raw_modules, dict):
            raise ValueError("project-graph document has no modules table")
        for name, raw in raw_modules.items():
            classes = {
                cname: ClassInfo(
                    name=c["name"],
                    module=c["module"],
                    lineno=c["lineno"],
                    bases=tuple(c["bases"]),
                    methods=tuple(c["methods"]),
                )
                for cname, c in raw["classes"].items()
            }
            functions = {
                fname: FunctionInfo(
                    name=f["name"],
                    qualname=f["qualname"],
                    module=f["module"],
                    lineno=f["lineno"],
                    decorators=tuple(f["decorators"]),
                    calls=tuple(f["calls"]),
                )
                for fname, f in raw["functions"].items()
            }
            modules[name] = ModuleInfo(
                name=raw["name"],
                path=raw["path"],
                digest=raw["digest"],
                imports=dict(raw["imports"]),
                classes=classes,
                functions=functions,
            )
        return cls(modules)

    @classmethod
    def load_or_build(
        cls,
        cache_path: str | Path | None,
        items: list[tuple[str, str, ast.Module]],
    ) -> "ProjectGraph":
        """Build the graph, reusing a cache file when every digest matches.

        A stale or unreadable cache is ignored (and rewritten), never an
        error: the cache is an optimization, not a source of truth.
        """
        if cache_path is None:
            return cls.from_sources(items)
        cache = Path(cache_path)
        want = {
            module_name_for_path(path): source_digest(source)
            for path, source, _ in items
        }
        if cache.is_file():
            try:
                payload = json.loads(cache.read_text(encoding="utf-8"))
                graph = cls.from_dict(payload)
                have = {m.name: m.digest for m in graph.modules.values()}
                if have == want:
                    return graph
            except (ValueError, KeyError, TypeError, OSError):
                pass
        graph = cls.from_sources(items)
        try:
            cache.write_text(
                json.dumps(graph.to_dict(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError:
            pass
        return graph


def _build_module(path: str, source: str, tree: ast.Module) -> ModuleInfo:
    info = ModuleInfo(
        name=module_name_for_path(path),
        path=str(path),
        digest=source_digest(source),
        imports=_collect_imports(tree),
    )

    def build_function(node: ast.FunctionDef, qualname: str) -> FunctionInfo:
        collector = _CallCollector()
        for stmt in node.body:
            collector.visit(stmt)
        class_prefix = qualname.rsplit(".", 1)[0] if "." in qualname else None
        calls = list(collector.bare)
        if class_prefix is not None:
            calls += [f"{class_prefix}.{m}" for m in collector.self_methods]
        return FunctionInfo(
            name=node.name,
            qualname=qualname,
            module=info.name,
            lineno=node.lineno,
            decorators=tuple(
                d for d in map(_decorator_name, node.decorator_list) if d
            ),
            calls=tuple(calls),
        )

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if isinstance(node, ast.FunctionDef):
                info.functions[node.name] = build_function(node, node.name)
        elif isinstance(node, ast.ClassDef):
            methods: list[str] = []
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    qualname = f"{node.name}.{item.name}"
                    info.functions[qualname] = build_function(item, qualname)
                    methods.append(item.name)
            bases = tuple(
                b for b in map(_base_name, node.bases) if b is not None
            )
            info.classes[node.name] = ClassInfo(
                name=node.name,
                module=info.name,
                lineno=node.lineno,
                bases=bases,
                methods=tuple(methods),
            )
    return info


def _base_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        parts: list[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            parts.append(cur.id)
            return ".".join(reversed(parts))
    if isinstance(node, ast.Subscript):  # Generic[...] bases
        return _base_name(node.value)
    return None
