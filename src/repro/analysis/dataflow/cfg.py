"""Statement-level control-flow graphs over :mod:`ast`.

One :class:`CFGNode` per *statement* (compound statements get a node for
their header — the ``if``/``while`` test, the ``for`` iterator — and
separate nodes for every statement in their bodies).  This granularity
is deliberately fine: the rules built on top anchor diagnostics at
statements, so blocks would only be re-split anyway, and the functions
under analysis are small (kernel bodies, tick loops).

Supported control flow: sequencing, ``if``/``elif``/``else``,
``while``/``for`` (with back edges, ``break``, ``continue``, ``else``),
``return``/``raise`` (edges to the synthetic exit), ``with``, and a
conservative ``try`` model in which every statement of the ``try`` body
may transfer to every handler.  Nested function and class definitions
are opaque single nodes — their bodies belong to *their* CFGs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["CFG", "CFGNode", "build_cfg"]


@dataclass
class CFGNode:
    """One statement (or synthetic entry/exit) in the graph.

    Attributes
    ----------
    index:
        Node id; stable within one :class:`CFG`.
    stmt:
        The statement this node represents, or ``None`` for the
        synthetic entry and exit nodes.
    succ, pred:
        Successor / predecessor node ids.
    """

    index: int
    stmt: ast.stmt | None
    succ: set[int] = field(default_factory=set)
    pred: set[int] = field(default_factory=set)


@dataclass
class CFG:
    """A built control-flow graph.

    Attributes
    ----------
    nodes:
        All nodes, indexed by :attr:`CFGNode.index`.
    entry, exit:
        Ids of the synthetic entry and exit nodes.
    """

    nodes: list[CFGNode]
    entry: int
    exit: int

    def node_of(self, stmt: ast.stmt) -> CFGNode:
        """The node representing ``stmt`` (by object identity).

        Raises
        ------
        KeyError
            if ``stmt`` has no node in this graph.
        """
        for node in self.nodes:
            if node.stmt is stmt:
                return node
        raise KeyError(f"statement at line {getattr(stmt, 'lineno', '?')} not in CFG")

    def statement_nodes(self) -> list[CFGNode]:
        """All non-synthetic nodes, in creation (roughly source) order."""
        return [n for n in self.nodes if n.stmt is not None]


class _Builder:
    def __init__(self) -> None:
        self.nodes: list[CFGNode] = []
        self.entry = self._new(None)
        self.exit = self._new(None)
        # (header id, list collecting the ids of `break` nodes)
        self._loops: list[tuple[int, list[int]]] = []

    def _new(self, stmt: ast.stmt | None) -> int:
        node = CFGNode(index=len(self.nodes), stmt=stmt)
        self.nodes.append(node)
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        self.nodes[src].succ.add(dst)
        self.nodes[dst].pred.add(src)

    def _connect(self, preds: set[int], dst: int) -> None:
        for p in preds:
            self._edge(p, dst)

    def seq(self, stmts: Sequence[ast.stmt], preds: set[int]) -> set[int]:
        """Thread ``stmts`` after ``preds``; return the fall-through set."""
        for stmt in stmts:
            preds = self.stmt(stmt, preds)
        return preds

    def stmt(self, stmt: ast.stmt, preds: set[int]) -> set[int]:
        node = self._new(stmt)
        self._connect(preds, node)
        if isinstance(stmt, ast.If):
            then_out = self.seq(stmt.body, {node})
            else_out = self.seq(stmt.orelse, {node}) if stmt.orelse else {node}
            return then_out | else_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            breaks: list[int] = []
            self._loops.append((node, breaks))
            body_out = self.seq(stmt.body, {node})
            self._loops.pop()
            for out in body_out:  # the back edge
                self._edge(out, node)
            exits: set[int] = {node}
            if stmt.orelse:
                exits = self.seq(stmt.orelse, exits)
            return exits | set(breaks)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.seq(stmt.body, {node})
        if isinstance(stmt, ast.Try):
            first = len(self.nodes)
            body_out = self.seq(stmt.body, {node})
            body_nodes = set(range(first, len(self.nodes)))
            # Conservative: an exception may leave any try-body statement.
            handler_preds = {node} | body_nodes
            outs = set(body_out)
            for handler in stmt.handlers:
                outs |= self.seq(handler.body, set(handler_preds))
            if stmt.orelse:
                outs |= self.seq(stmt.orelse, body_out)
            if stmt.finalbody:
                outs = self.seq(stmt.finalbody, outs)
            return outs
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._edge(node, self.exit)
            return set()
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][1].append(node)
            return set()
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self._edge(node, self._loops[-1][0])
            return set()
        # Simple statements — and opaque nested defs/classes.
        return {node}


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """Build the CFG of a statement sequence (e.g. a function body).

    Fall-through from the last statement is wired to the synthetic exit
    node, so every execution path ends at :attr:`CFG.exit`.
    """
    builder = _Builder()
    out = builder.seq(list(body), {builder.entry})
    builder._connect(out, builder.exit)
    return CFG(nodes=builder.nodes, entry=builder.entry, exit=builder.exit)
