"""Diagnostic records produced by the lint engine.

A :class:`Diagnostic` is one finding at one source location.  The
machine-readable form (:meth:`Diagnostic.to_dict`) is stable — tests
pin its schema so downstream tooling (CI annotations, editors) can rely
on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Severity", "Diagnostic"]


class Severity(enum.Enum):
    """How seriously a finding should be taken.

    ``ERROR`` findings fail ``repro lint``; ``WARNING`` findings are
    reported but do not affect the exit code.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding: a rule violated at a source location.

    Attributes
    ----------
    path:
        Display path of the offending file (as given to the engine).
    line, col:
        1-based line and 0-based column of the offending node, matching
        the :mod:`ast` convention.
    rule:
        Rule identifier, e.g. ``"RPR001"``.
    severity:
        :class:`Severity` of the finding.
    message:
        Human-readable explanation.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        """Stable ordering: by file, then location, then rule id."""
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        """The one-line ``path:line:col: RULE [severity] message`` form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (schema pinned by tests)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
        }
