"""Static design-rule checking and physics sanitization.

The paper's results rest on invariants the code must never silently
break: collision rules conserve mass and momentum (§2), design formulas
respect the pin/area constraint algebra (§4–6), and pebble-game moves
obey the legality rules (§7).  This package enforces them at two layers:

* :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules` — an
  AST-based lint engine with repo-specific design rules (``RPR001`` …),
  run as ``repro lint``;
* :mod:`repro.analysis.dataflow` — the CFG / reaching-definitions /
  project-graph layer underneath the ``RPR101``/``RPR102``/``RPR110``
  hot-path and buffer-hazard rules, with the burn-down baseline in
  :mod:`repro.analysis.baseline` backing ``repro lint --strict``;
* :mod:`repro.analysis.sanitizer` + :mod:`repro.analysis.invariants` —
  a runtime harness that exhaustively verifies collision tables,
  replays pebbling schedules through the legality-checking game, and
  cross-checks the closed-form throughput formulas against the engine
  simulators, run as ``repro sanitize``.

See ``docs/LINT_RULES.md`` for the rule catalog.
"""

from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    baseline_from_diagnostics,
    load_baseline,
    save_baseline,
)
from repro.analysis.dataflow import ProjectGraph
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import LintEngine, LintReport, lint_paths
from repro.analysis.invariants import CheckResult
from repro.analysis.sanitizer import available_checks, run_checks

__all__ = [
    "Diagnostic",
    "Severity",
    "LintEngine",
    "LintReport",
    "lint_paths",
    "Baseline",
    "BaselineEntry",
    "baseline_from_diagnostics",
    "load_baseline",
    "save_baseline",
    "ProjectGraph",
    "CheckResult",
    "available_checks",
    "run_checks",
]
