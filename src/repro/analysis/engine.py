"""The lint engine: file discovery, parsing, rule dispatch, reporting.

The engine is deliberately small: it finds Python files, parses each
one once, builds the cross-file :class:`ProjectGraph` so rules can see
facts defined in other modules, hands each AST to every applicable
rule, filters inline ``# repro: noqa`` suppressions, and aggregates the
findings into a :class:`LintReport` with stable text and JSON
renderings.  Unparseable files produce an ``RPR000`` diagnostic rather
than crashing the run, so one broken fixture cannot hide findings in
the rest of the tree.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.dataflow.project import ProjectGraph
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import ALL_RULES, ModuleUnderCheck, Rule

__all__ = ["LintEngine", "LintReport", "iter_python_files", "lint_paths"]

#: Directories never descended into during discovery.
_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".venv",
    "build",
    "dist",
    ".mypy_cache",
    ".pytest_cache",
    ".ruff_cache",
    ".hypothesis",
}

#: Directory suffixes never descended into (``<pkg>.egg-info`` trees).
_SKIP_SUFFIXES = (".egg-info",)

#: ``# repro: noqa`` or ``# repro: noqa[RPR001,RPR110]`` on the finding's line.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9,\s]*)\])?")


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises
    ------
    FileNotFoundError
        if a named path does not exist.
    """
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if d not in _SKIP_DIRS and not d.endswith(_SKIP_SUFFIXES)
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(Path(dirpath) / name)
        elif path.is_file():
            out.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(set(out))


def _noqa_rules_for_lines(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number → suppressed rule ids (``None`` = all rules)."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        ids = match.group(1)
        if ids is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                part.strip() for part in ids.split(",") if part.strip()
            )
    return out


def _apply_noqa(
    diagnostics: list[Diagnostic], source: str
) -> tuple[list[Diagnostic], int]:
    """Drop findings suppressed by ``# repro: noqa`` comments.

    Returns the kept findings and the number suppressed.
    """
    noqa = _noqa_rules_for_lines(source)
    if not noqa:
        return diagnostics, 0
    kept: list[Diagnostic] = []
    suppressed = 0
    for d in diagnostics:
        rules = noqa.get(d.line, frozenset())
        if rules is None or (rules and d.rule in rules):
            suppressed += 1
        else:
            kept.append(d)
    return kept, suppressed


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run.

    Attributes
    ----------
    diagnostics:
        All findings, sorted by (path, line, col, rule).
    files_checked:
        Number of files parsed (including unparseable ones).
    suppressed:
        Findings silenced by inline ``# repro: noqa`` comments.
    """

    diagnostics: tuple[Diagnostic, ...]
    files_checked: int = 0
    suppressed: int = 0

    @property
    def error_count(self) -> int:
        """Findings at :attr:`Severity.ERROR`."""
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warning_count(self) -> int:
        """Findings at :attr:`Severity.WARNING`."""
        return sum(1 for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def exit_code(self) -> int:
        """Process exit code: 1 if any error-severity finding, else 0."""
        return 1 if self.error_count else 0

    def format_text(self) -> str:
        """The human-readable report (one line per finding + summary)."""
        lines = [d.format() for d in self.diagnostics]
        suffix = (
            f", {self.suppressed} suppressed" if self.suppressed else ""
        )
        lines.append(
            f"{self.files_checked} file(s) checked: "
            f"{self.error_count} error(s), {self.warning_count} warning(s)"
            f"{suffix}"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (schema version pinned by tests)."""
        return {
            "version": 2,
            "files_checked": self.files_checked,
            "summary": {
                "errors": self.error_count,
                "warnings": self.warning_count,
                "suppressed": self.suppressed,
                "total": len(self.diagnostics),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def format_json(self) -> str:
        """Deterministic JSON rendering (sorted keys, 2-space indent)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def format_github(self) -> str:
        """GitHub Actions workflow-command annotations, one per finding."""
        lines = []
        for d in self.diagnostics:
            level = "error" if d.severity is Severity.ERROR else "warning"
            lines.append(
                f"::{level} file={d.path},line={d.line},col={d.col + 1},"
                f"title={d.rule}::{d.message}"
            )
        return "\n".join(lines)


@dataclass
class LintEngine:
    """Runs a rule set over source files.

    Parameters
    ----------
    rules:
        The rules to apply (default: every registered rule).
    project_cache:
        Optional path for the digest-keyed project-graph cache; reused
        when every source digest matches, rebuilt and rewritten
        otherwise.
    """

    rules: Sequence[Rule] = field(default_factory=lambda: ALL_RULES)
    project_cache: Path | None = None

    def _parse(
        self, source: str, path: str
    ) -> tuple[ast.Module | None, Diagnostic | None]:
        try:
            return ast.parse(source, filename=path), None
        except SyntaxError as exc:
            return None, Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="RPR000",
                severity=Severity.ERROR,
                message=f"file does not parse: {exc.msg}",
            )

    def _check_module(self, module: ModuleUnderCheck) -> list[Diagnostic]:
        found: list[Diagnostic] = []
        for rule in self.rules:
            if rule.applies_to(module):
                found.extend(rule.check(module))
        return found

    def lint_source(self, source: str, path: str) -> list[Diagnostic]:
        """Lint source text under a display path (used by tests/fixtures).

        Single-file entry point: no project graph, and inline ``noqa``
        suppressions are applied without being counted.
        """
        tree, parse_error = self._parse(source, path)
        if tree is None:
            assert parse_error is not None
            return [parse_error]
        module = ModuleUnderCheck(path=path, source=source, tree=tree)
        kept, _ = _apply_noqa(self._check_module(module), source)
        return kept

    def lint_file(self, path: str | Path) -> list[Diagnostic]:
        """Lint one file from disk."""
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        return self.lint_source(source, str(path))

    def lint_paths(self, paths: Iterable[str | Path]) -> LintReport:
        """Lint files and directories; returns the aggregated report.

        All files are parsed first so the cross-file project graph can
        be built (and cached when :attr:`project_cache` is set) before
        any rule runs; rules then see each module with
        ``module.project`` populated.
        """
        files = iter_python_files(paths)
        parsed: list[tuple[Path, str, ast.Module]] = []
        diagnostics: list[Diagnostic] = []
        for file_path in files:
            source = file_path.read_text(encoding="utf-8")
            tree, parse_error = self._parse(source, str(file_path))
            if tree is None:
                assert parse_error is not None
                diagnostics.append(parse_error)
            else:
                parsed.append((file_path, source, tree))
        graph_items = [
            (str(path), source, tree) for path, source, tree in parsed
        ]
        if self.project_cache is not None:
            project = ProjectGraph.load_or_build(self.project_cache, graph_items)
        else:
            project = ProjectGraph.from_sources(graph_items)
        suppressed = 0
        for file_path, source, tree in parsed:
            module = ModuleUnderCheck(
                path=str(file_path), source=source, tree=tree, project=project
            )
            kept, dropped = _apply_noqa(self._check_module(module), source)
            diagnostics.extend(kept)
            suppressed += dropped
        diagnostics.sort(key=Diagnostic.sort_key)
        return LintReport(
            diagnostics=tuple(diagnostics),
            files_checked=len(files),
            suppressed=suppressed,
        )


def lint_paths(
    paths: Iterable[str | Path],
    select: list[str] | None = None,
    ignore: list[str] | None = None,
    project_cache: Path | None = None,
) -> LintReport:
    """One-call convenience: lint ``paths`` with an optional rule subset."""
    from repro.analysis.rules import get_rules

    return LintEngine(
        rules=get_rules(select, ignore), project_cache=project_cache
    ).lint_paths(paths)
