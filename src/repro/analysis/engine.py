"""The lint engine: file discovery, parsing, rule dispatch, reporting.

The engine is deliberately small: it finds Python files, parses each
one once, hands the AST to every applicable rule, and aggregates the
findings into a :class:`LintReport` with stable text and JSON
renderings.  Unparseable files produce an ``RPR000`` diagnostic rather
than crashing the run, so one broken fixture cannot hide findings in
the rest of the tree.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import ALL_RULES, ModuleUnderCheck, Rule

__all__ = ["LintEngine", "LintReport", "iter_python_files", "lint_paths"]

#: Directories never descended into during discovery.
_SKIP_DIRS = {".git", "__pycache__", ".venv", "build", "dist", ".mypy_cache"}


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises
    ------
    FileNotFoundError
        if a named path does not exist.
    """
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(Path(dirpath) / name)
        elif path.is_file():
            out.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(set(out))


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run.

    Attributes
    ----------
    diagnostics:
        All findings, sorted by (path, line, col, rule).
    files_checked:
        Number of files parsed (including unparseable ones).
    """

    diagnostics: tuple[Diagnostic, ...]
    files_checked: int = 0

    @property
    def error_count(self) -> int:
        """Findings at :attr:`Severity.ERROR`."""
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warning_count(self) -> int:
        """Findings at :attr:`Severity.WARNING`."""
        return sum(1 for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def exit_code(self) -> int:
        """Process exit code: 1 if any error-severity finding, else 0."""
        return 1 if self.error_count else 0

    def format_text(self) -> str:
        """The human-readable report (one line per finding + summary)."""
        lines = [d.format() for d in self.diagnostics]
        lines.append(
            f"{self.files_checked} file(s) checked: "
            f"{self.error_count} error(s), {self.warning_count} warning(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (schema version pinned by tests)."""
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "summary": {
                "errors": self.error_count,
                "warnings": self.warning_count,
                "total": len(self.diagnostics),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def format_json(self) -> str:
        """Deterministic JSON rendering (sorted keys, 2-space indent)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


@dataclass
class LintEngine:
    """Runs a rule set over source files.

    Parameters
    ----------
    rules:
        The rules to apply (default: every registered rule).
    """

    rules: Sequence[Rule] = field(default_factory=lambda: ALL_RULES)

    def lint_source(self, source: str, path: str) -> list[Diagnostic]:
        """Lint source text under a display path (used by tests/fixtures)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Diagnostic(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="RPR000",
                    severity=Severity.ERROR,
                    message=f"file does not parse: {exc.msg}",
                )
            ]
        module = ModuleUnderCheck(path=path, source=source, tree=tree)
        found: list[Diagnostic] = []
        for rule in self.rules:
            if rule.applies_to(module):
                found.extend(rule.check(module))
        return found

    def lint_file(self, path: str | Path) -> list[Diagnostic]:
        """Lint one file from disk."""
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        return self.lint_source(source, str(path))

    def lint_paths(self, paths: Iterable[str | Path]) -> LintReport:
        """Lint files and directories; returns the aggregated report."""
        files = iter_python_files(paths)
        diagnostics: list[Diagnostic] = []
        for file_path in files:
            diagnostics.extend(self.lint_file(file_path))
        diagnostics.sort(key=Diagnostic.sort_key)
        return LintReport(
            diagnostics=tuple(diagnostics), files_checked=len(files)
        )


def lint_paths(
    paths: Iterable[str | Path],
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> LintReport:
    """One-call convenience: lint ``paths`` with an optional rule subset."""
    from repro.analysis.rules import get_rules

    return LintEngine(rules=get_rules(select, ignore)).lint_paths(paths)
