"""Runtime invariant checks behind ``repro sanitize``.

Three families, matching the three places the paper's physics can rot:

* **Collision tables** (§2) — every rule table is verified over *all*
  ``2^C`` input states for mass and per-axis momentum conservation,
  plus the structural properties the kernels rely on (permutation of
  the state space; involution where the rule is its own inverse).
* **Pebbling legality** (§7) — the schedule generators are replayed
  through the rule-enforcing :class:`~repro.pebbling.game.RedBluePebbleGame`
  and their measured I/O is compared against the Hong–Kung floor.
* **Design algebra / engines** (§4–6) — the closed-form WSA and SPA
  throughput and bandwidth formulas are cross-checked against the
  cycle-counting engine simulators on small configurations.

Every check returns a :class:`CheckResult`; nothing raises, so one
broken invariant cannot mask another.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "CheckResult",
    "check_table_exhaustive",
    "check_hpp_table",
    "check_fhp_tables",
    "check_ndim_tables",
    "check_pebble_legality",
    "check_wsa_engine_formulas",
    "check_spa_engine_formulas",
    "check_machine_registry",
    "check_design_algebra",
]

#: Pipeline fill/drain latency makes measured engine rates fall short of
#: the steady-state closed forms on small configs; 35% covers the worst
#: small-lattice case exercised here while still catching a wrong formula
#: (which is off by an integer factor, not a fill constant).
_ENGINE_RATE_RTOL = 0.35


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one sanitizer check.

    Attributes
    ----------
    name:
        Stable check identifier, e.g. ``"hpp/conservation"``.
    passed:
        Whether the invariant held.
    detail:
        What was verified (on pass) or what broke and where (on fail).
    """

    name: str
    passed: bool
    detail: str

    @property
    def status(self) -> str:
        """``"PASS"`` or ``"FAIL"``."""
        return "PASS" if self.passed else "FAIL"

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form."""
        return {"name": self.name, "status": self.status, "detail": self.detail}


# -- collision tables ----------------------------------------------------------


def check_table_exhaustive(
    name: str,
    table: np.ndarray,
    velocities: np.ndarray,
    *,
    expect_permutation: bool = True,
    expect_involution: bool = False,
    atol: float = 1e-12,
) -> CheckResult:
    """Exhaustively verify one rule table over all ``2^C`` states.

    Works on *raw* arrays — unlike
    :class:`repro.lgca.collision.CollisionTable` construction, a
    corrupted table yields a failed :class:`CheckResult` instead of an
    exception, which is what a diagnostic harness needs.

    Parameters
    ----------
    name:
        Check name used in the result.
    table:
        ``(2^C,)`` integer lookup array.
    velocities:
        ``(C, d)`` per-channel velocity vectors (any dimension).
    expect_permutation:
        Also require the table to be a bijection on the state space
        (deterministic microdynamics must not merge states).
    expect_involution:
        Also require ``table[table] == identity`` (two-body rules with
        fixed chirality are their own inverse).
    atol:
        Momentum tolerance (hex velocities are irrational).
    """
    table = np.asarray(table)
    velocities = np.asarray(velocities, dtype=np.float64)
    num_channels = velocities.shape[0]
    size = 1 << num_channels
    if table.shape != (size,):
        return CheckResult(
            name,
            False,
            f"table shape {table.shape} != ({size},) for {num_channels} channels",
        )
    if table.min() < 0 or table.max() >= size:
        return CheckResult(name, False, "table maps outside the state space")

    states = np.arange(size, dtype=np.uint32)
    out = table.astype(np.uint32)
    mass_in = _popcounts(states, num_channels)
    mass_out = _popcounts(out, num_channels)
    bad = np.nonzero(mass_in != mass_out)[0]
    if bad.size:
        s = int(bad[0])
        return CheckResult(
            name,
            False,
            f"mass broken at state {s:#x}: {int(mass_in[s])} particles -> "
            f"state {int(table[s]):#x} with {int(mass_out[s])}",
        )
    momenta = _state_momenta(velocities)
    err = np.abs(momenta[states] - momenta[out]).max(axis=1)
    bad = np.nonzero(err > atol)[0]
    if bad.size:
        s = int(bad[0])
        return CheckResult(
            name,
            False,
            f"momentum broken at state {s:#x}: p={momenta[s]} -> "
            f"state {int(table[s]):#x} with p={momenta[int(table[s])]}",
        )
    checked = ["mass", "momentum"]
    if expect_permutation:
        if np.unique(out).size != size:
            return CheckResult(
                name, False, "table is not a permutation of the state space"
            )
        checked.append("bijectivity")
    if expect_involution:
        if not np.array_equal(out[out], states):
            return CheckResult(name, False, "table is not an involution")
        checked.append("involution")
    return CheckResult(
        name, True, f"{size}/{size} states conserve {' + '.join(checked)}"
    )


def _popcounts(states: np.ndarray, num_channels: int) -> np.ndarray:
    """Particle count of every state (bits set)."""
    counts = np.zeros(states.shape, dtype=np.int64)
    for bit in range(num_channels):
        counts += (states >> np.uint32(bit)) & np.uint32(1)
    return counts


def _state_momenta(velocities: np.ndarray) -> np.ndarray:
    """(2^C, d) net momentum of every state."""
    num_channels, dim = velocities.shape
    states = np.arange(1 << num_channels, dtype=np.uint32)
    momenta = np.zeros((states.size, dim), dtype=np.float64)
    for bit in range(num_channels):
        occupied = ((states >> np.uint32(bit)) & np.uint32(1)).astype(np.float64)
        momenta += occupied[:, None] * velocities[bit]
    return momenta


def check_hpp_table() -> list[CheckResult]:
    """All 16 HPP states conserve mass/momentum; the rule is an involution."""
    from repro.lgca.hpp import hpp_collision_table

    table = hpp_collision_table()
    return [
        check_table_exhaustive(
            "hpp/conservation",
            np.asarray(table.table),
            np.asarray(table.velocities),
            expect_involution=True,
        )
    ]


def check_fhp_tables() -> list[CheckResult]:
    """Both chiralities of FHP-I (64), FHP-II (128), and FHP-III (128)."""
    from repro.lgca.fhp import (
        fhp6_collision_tables,
        fhp7_collision_tables,
        fhp_saturated_tables,
    )

    results = []
    variants = [
        ("fhp6", fhp6_collision_tables()),
        ("fhp7", fhp7_collision_tables()),
        ("fhp-sat", fhp_saturated_tables()),
    ]
    for label, (left, right) in variants:
        for chirality, table in (("left", left), ("right", right)):
            results.append(
                check_table_exhaustive(
                    f"{label}/{chirality}/conservation",
                    np.asarray(table.table),
                    np.asarray(table.velocities),
                )
            )
        # The two chiralities rotate scattering outcomes by +60° and
        # -60°; composing them must restore every state exactly.
        size = left.num_states
        inverse_ok = np.array_equal(
            np.asarray(left.table)[np.asarray(right.table)], np.arange(size)
        )
        results.append(
            CheckResult(
                f"{label}/chirality-inverse",
                inverse_ok,
                "left and right tables are mutual inverses"
                if inverse_ok
                else "left∘right is not the identity — chiralities diverge",
            )
        )
    return results


def check_ndim_tables(max_dimension: int = 4) -> list[CheckResult]:
    """d-dimensional HPP tables for d = 1 … ``max_dimension``."""
    from repro.lgca.ndim import ndhpp_collision_table, ndhpp_velocities

    results = []
    for d in range(1, max_dimension + 1):
        table = ndhpp_collision_table(d)
        results.append(
            check_table_exhaustive(
                f"ndim/d={d}/conservation",
                np.asarray(table.table),
                ndhpp_velocities(d),
                # the axis-cycling scatter is an involution only for d <= 2
                expect_involution=d <= 2,
            )
        )
    return results


# -- pebbling ------------------------------------------------------------------


def check_pebble_legality(
    dimension: int = 2, side: int = 6, generations: int = 3
) -> list[CheckResult]:
    """Replay every schedule generator through the legality-checking game.

    Each schedule must be a *complete computation* (all outputs
    blue-pebbled) made of individually legal moves within its declared
    red-pebble budget, and its measured I/O must sit on or above the
    Hong–Kung lower bound.
    """
    from repro.lattice.geometry import OrthogonalLattice
    from repro.pebbling.bounds import io_per_update_lower_bound
    from repro.pebbling.game import IllegalMoveError
    from repro.pebbling.graph import ComputationGraph
    from repro.pebbling.schedules import (
        lru_cache_schedule,
        measure_schedule,
        per_site_schedule,
        row_cache_schedule,
        row_cache_storage_needed,
        trapezoid_schedule,
        trapezoid_storage_needed,
    )

    graph = ComputationGraph(
        OrthogonalLattice.cube(dimension, side), generations=generations
    )
    lru_storage = max(2 * dimension + 2, side * 2)
    candidates = [
        ("per-site", per_site_schedule(graph), 2 * dimension + 2),
        ("row-cache", row_cache_schedule(graph, 2), row_cache_storage_needed(graph, 2)),
        (
            "trapezoid",
            trapezoid_schedule(graph, max(2, side // 2), 2),
            trapezoid_storage_needed(graph, max(2, side // 2), 2),
        ),
        ("lru", lru_cache_schedule(graph, lru_storage), lru_storage),
    ]
    results = []
    for label, moves, storage in candidates:
        name = f"pebble/{label}"
        try:
            report = measure_schedule(graph, moves, storage, name=label)
        except (IllegalMoveError, ValueError) as exc:
            results.append(CheckResult(name, False, f"illegal schedule: {exc}"))
            continue
        floor = io_per_update_lower_bound(graph, report.max_red)
        if report.io_per_update < floor - 1e-9:
            results.append(
                CheckResult(
                    name,
                    False,
                    f"I/O {report.io_per_update:.4f}/update beats the "
                    f"Hong-Kung floor {floor:.4f} — accounting is broken",
                )
            )
            continue
        results.append(
            CheckResult(
                name,
                True,
                f"{len(moves)} moves legal within S={report.max_red}, "
                f"I/O {report.io_per_update:.3f}/update >= floor {floor:.3f}",
            )
        )
    return results


# -- design formulas vs engines ------------------------------------------------


def check_wsa_engine_formulas(
    rows: int = 12, cols: int = 16, lanes: int = 4, depth: int = 2
) -> list[CheckResult]:
    """Closed-form WSA rate/bandwidth vs the cycle-counting engine.

    Steady state predicts ``P·k`` updates per tick and ``2·D·P`` main
    memory bits per tick; the measured values run below by pipeline
    fill only.
    """
    from repro import machines
    from repro.lgca.fhp import FHPModel
    from repro.lgca.flows import uniform_random_state

    model = FHPModel(rows, cols, boundary="null")
    engine = machines.create("wsa", model, lanes=lanes, pipeline_depth=depth)
    state = uniform_random_state(
        rows, cols, model.num_channels, 0.3, np.random.default_rng(7)
    )
    _, stats = engine.run(state, 2 * depth)
    results = [
        _compare_rate(
            "wsa/updates-per-tick",
            measured=stats.updates_per_tick,
            predicted=float(lanes * depth),
            formula="R/F = P*k",
        ),
        _compare_rate(
            "wsa/memory-bandwidth",
            measured=stats.main_bandwidth_bits_per_tick,
            predicted=2.0 * model.bits_per_site * lanes,
            formula="2*D*P bits/tick",
        ),
    ]
    return results


def check_spa_engine_formulas(
    rows: int = 12, cols: int = 16, slice_width: int = 4, depth: int = 2
) -> list[CheckResult]:
    """Closed-form SPA rate/bandwidth vs the cycle-counting engine.

    With ``L/W`` slices streaming in lock-step the closed forms are
    ``k·L/W`` updates per tick and ``2·D·L/W`` main-memory bits per tick.
    """
    from repro import machines
    from repro.lgca.fhp import FHPModel
    from repro.lgca.flows import uniform_random_state

    model = FHPModel(rows, cols, boundary="null")
    engine = machines.create(
        "spa", model, slice_width=slice_width, pipeline_depth=depth
    )
    state = uniform_random_state(
        rows, cols, model.num_channels, 0.3, np.random.default_rng(7)
    )
    _, stats = engine.run(state, 2 * depth)
    num_slices = math.ceil(cols / slice_width)
    return [
        _compare_rate(
            "spa/updates-per-tick",
            measured=stats.updates_per_tick,
            predicted=float(depth * num_slices),
            formula="R/F = k*L/W",
        ),
        _compare_rate(
            "spa/memory-bandwidth",
            measured=stats.main_bandwidth_bits_per_tick,
            predicted=2.0 * model.bits_per_site * num_slices,
            formula="2*D*L/W bits/tick",
        ),
    ]


def check_machine_registry(
    rows: int = 16, cols: int = 16, generations: int = 3
) -> list[CheckResult]:
    """Registry completeness plus simulator-vs-design-model cycle counts.

    Three invariants per registered machine: the engine constructed
    through the registry runs; its measured ``stats.ticks`` equals the
    paired design model's closed-form prediction *exactly*; and its
    measured updates per tick never exceed the architectural peak of
    one update per PE per tick.  A fourth, global check asserts every
    engine class exported by :mod:`repro.engines` is claimed by a spec
    — a machine left out of the registry fails here (and in CI).
    """
    from repro import machines
    from repro.lgca.flows import uniform_random_state
    from repro.lgca.hpp import HPPModel

    results = []
    missing = machines.unregistered_engines()
    results.append(
        CheckResult(
            "machines/registry-complete",
            not missing,
            "every exported engine class has a registered spec"
            if not missing
            else f"engines missing from the registry: {', '.join(missing)}",
        )
    )
    state = uniform_random_state(rows, cols, 4, 0.3, np.random.default_rng(11))
    for spec in machines.specs():
        model = HPPModel(rows, cols, boundary="null")
        engine = spec.create(model, pipeline_depth=2)
        _, stats = engine.run(state, generations)
        predicted = spec.predicted_ticks(engine, generations)
        results.append(
            CheckResult(
                f"machines/{spec.name}/ticks",
                stats.ticks == predicted,
                f"measured {stats.ticks} ticks vs design model {predicted} "
                f"for {generations} generations on {rows}x{cols}",
            )
        )
        peak = spec.steady_updates_per_tick(engine)
        results.append(
            CheckResult(
                f"machines/{spec.name}/throughput-bound",
                stats.updates_per_tick <= peak + 1e-9,
                f"measured {stats.updates_per_tick:.3f} updates/tick vs "
                f"peak {peak:.3f} (one per PE per tick)",
            )
        )
    return results


def _compare_rate(
    name: str, measured: float, predicted: float, formula: str
) -> CheckResult:
    """Measured engine rate must sit within fill-latency of the formula."""
    if predicted <= 0:
        return CheckResult(name, False, f"non-positive prediction {predicted}")
    ratio = measured / predicted
    if ratio > 1.0 + 1e-9:
        return CheckResult(
            name,
            False,
            f"engine measured {measured:.3f} EXCEEDS closed form "
            f"{formula} = {predicted:.3f} — formula or accounting is wrong",
        )
    if ratio < 1.0 - _ENGINE_RATE_RTOL:
        return CheckResult(
            name,
            False,
            f"engine measured {measured:.3f} vs closed form {formula} = "
            f"{predicted:.3f} (ratio {ratio:.2f}) — beyond fill latency",
        )
    return CheckResult(
        name,
        True,
        f"measured {measured:.3f} vs {formula} = {predicted:.3f} "
        f"(ratio {ratio:.2f})",
    )


def check_design_algebra() -> list[CheckResult]:
    """Pin/area algebra of the optimal WSA and SPA designs.

    The published operating points must be feasible, *tight* (one more
    PE breaks a constraint), and satisfy the paper's R/N identity.
    """
    from repro.core.spa import SPAModel
    from repro.core.technology import PAPER_TECHNOLOGY
    from repro.core.wsa import WSADesign, WSAModel

    results = []
    tech = PAPER_TECHNOLOGY
    wsa = WSAModel(tech).optimal_design()
    if not wsa.is_feasible():
        results.append(
            CheckResult(
                "design/wsa-feasible",
                False,
                f"optimal WSA violates constraints: {wsa.infeasibility_reasons()}",
            )
        )
    else:
        bumped = WSADesign(
            technology=tech,
            lattice_size=wsa.lattice_size,
            pes_per_chip=wsa.pes_per_chip + 1,
            pipeline_depth=wsa.pipeline_depth,
        )
        tight = not bumped.is_feasible()
        results.append(
            CheckResult(
                "design/wsa-feasible",
                tight,
                f"P={wsa.pes_per_chip}, L={wsa.lattice_size}: pins "
                f"{wsa.pins_used}/{tech.Pi}, area {wsa.chip_area_used:.4f}/1"
                + ("" if tight else " — but P+1 is still feasible (not optimal)"),
            )
        )
    spa = SPAModel(tech).optimal_design(lattice_size=785)
    if not spa.is_feasible():
        results.append(
            CheckResult(
                "design/spa-feasible",
                False,
                f"optimal SPA violates constraints: {spa.infeasibility_reasons()}",
            )
        )
    else:
        identity_ok = math.isclose(
            spa.throughput_per_chip,
            tech.F * spa.pes_wide * spa.pes_deep,
            rel_tol=1e-9,
        )
        results.append(
            CheckResult(
                "design/spa-feasible",
                identity_ok,
                f"P_w={spa.pes_wide}, P_k={spa.pes_deep}, W={spa.slice_width}: "
                f"pins {spa.pins_used}/{tech.Pi}, area {spa.chip_area_used:.4f}/1, "
                "R/N = F*Pw*Pk "
                + ("holds" if identity_ok else "VIOLATED"),
            )
        )
    return results
