"""RPR101/RPR102 — streaming hot paths must not allocate or do I/O.

The bit-plane backend's measured 9–14× speedup (``BENCH_kernels.json``)
holds only while ``step_into`` and the other per-generation kernels run
allocation-free at streaming rate; one hidden ``np.zeros`` per call and
the benchmark silently degrades into a memory-allocator test.  Margolus'
CAM-8 and the AVX/CUDA CA literature both identify exactly this memory
discipline as the determinant of lattice-update throughput — so it is
checked by machine, not convention.

A function is *hot* when it is decorated ``@hot_path``
(:mod:`repro.util.hotpath`) or its qualified name appears in
:data:`repro.util.hotpath.HOT_PATH_REGISTRY` (so deleting a decorator
cannot silence the check).  For every hot function the rules check:

``RPR101`` (allocation)
    no allocating numpy constructor (``np.zeros``/``empty``/``copy``/
    ``concatenate``/...), no ``out=``-capable ufunc called *without*
    ``out=``, no ``.astype()``/``.copy()`` on an array, and no binary
    operator whose operand is array-typed (every ``a & b`` on arrays
    allocates a temporary) — array-typedness is inferred by reaching
    definitions over the function's CFG.  Calls to same-module helpers
    are checked through interprocedural summaries: a hot function that
    calls an allocating helper is flagged at the call site.
    Escape hatch: ``# repro: alloc-ok`` on the offending line marks a
    deliberate setup-region or cold-branch allocation.

``RPR102`` (purity)
    no ``print``/logging calls, no attribute writes to non-``self``
    objects, and no growth of persistent ``self.*`` containers
    (``append``/``extend``/``update``/...) — also propagated through
    same-module call summaries.

Setup code (``__init__``/``__post_init__``/``__new__``) is never treated
as hot, even if listed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.dataflow.cfg import CFG, build_cfg
from repro.analysis.dataflow.reaching import (
    Definition,
    ReachingDefinitions,
    dotted_name,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules.base import ModuleUnderCheck, Rule
from repro.util.hotpath import HOT_PATH_REGISTRY

__all__ = ["HotPathAllocationRule", "HotPathPurityRule"]

#: numpy callables that always return a freshly allocated array.
_ALLOC_FUNCS = {
    "zeros", "ones", "empty", "full",
    "zeros_like", "ones_like", "empty_like", "full_like",
    "array", "copy", "concatenate", "stack", "vstack", "hstack", "dstack",
    "column_stack", "arange", "linspace", "tile", "repeat", "meshgrid",
    "packbits", "unpackbits", "where", "unique", "sort", "argsort",
    "nonzero", "bincount",
}

#: numpy callables that allocate *unless* routed through ``out=``.
_OUT_CAPABLE = {
    "take", "add", "subtract", "multiply", "divide", "floor_divide",
    "mod", "power", "matmul", "clip",
    "bitwise_and", "bitwise_or", "bitwise_xor", "bitwise_not", "invert",
    "left_shift", "right_shift", "logical_and", "logical_or", "logical_not",
    "minimum", "maximum", "abs", "absolute", "negative", "sqrt",
}

#: array methods that return a freshly allocated copy.
_METHOD_ALLOCS = {"astype", "copy", "flatten"}

#: container methods that grow persistent state.
_GROWTH_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "appendleft", "extendleft",
}

_LOG_METHODS = {"debug", "info", "warning", "error", "critical", "exception", "log"}

#: functions never treated as hot, whatever the registry says.
_SETUP_NAMES = {"__init__", "__post_init__", "__new__"}

_ALLOC_OK_RE = re.compile(r"#\s*repro:\s*alloc-ok")


def _is_np(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Name) and expr.id in ("np", "numpy")


def _has_out_kwarg(call: ast.Call) -> bool:
    return any(kw.arg == "out" for kw in call.keywords)


@dataclass
class _Flag:
    """One potential finding inside a function body."""

    node: ast.AST
    message: str


@dataclass
class _Fn:
    """Per-function analysis record."""

    node: ast.FunctionDef
    qualname: str
    class_name: str | None
    hot: bool
    allocs: list[_Flag] = field(default_factory=list)
    impure: list[_Flag] = field(default_factory=list)
    local_calls: list[tuple[str, ast.Call]] = field(default_factory=list)


def _alloc_ok_lines(source: str) -> set[int]:
    lines: set[int] = set()
    for i, line in enumerate(source.splitlines(), start=1):
        if _ALLOC_OK_RE.search(line):
            lines.add(i)
    return lines


def _node_is_alloc_ok(node: ast.AST, ok_lines: set[int]) -> bool:
    start = getattr(node, "lineno", 0)
    end = getattr(node, "end_lineno", start) or start
    return any(line in ok_lines for line in range(start, end + 1))


def _bind_target_names(target: ast.expr) -> Iterator[str]:
    """Names *rebound* by an assignment target.

    Subscript/attribute targets mutate existing storage — they bind no
    new name, and their index expressions are reads, not targets.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _bind_target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _bind_target_names(target.value)


class _ArrayEnv:
    """Flow-insensitive array-typedness used to seed the dataflow pass."""

    def __init__(self, fn: ast.FunctionDef, class_arrays: set[str]):
        self.class_arrays = class_arrays
        self.params: set[str] = set()
        args = fn.args
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            ann = a.annotation
            text = ast.unparse(ann) if ann is not None else ""
            if "ndarray" in text or "NDArray" in text:
                self.params.add(a.arg)
        self.names: set[str] = set(self.params)
        changed = True
        while changed:
            changed = False
            for stmt in ast.walk(fn):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    continue
                value = stmt.value
                if value is None or not self.arrayish(value):
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    for name in _bind_target_names(target):
                        if name not in self.names:
                            self.names.add(name)
                            changed = True

    def arrayish(self, expr: ast.expr) -> bool:
        """Whether ``expr`` recognizably produces/propagates an array."""
        if isinstance(expr, ast.Name):
            return expr.id in self.names
        if isinstance(expr, ast.Attribute):
            name = dotted_name(expr)
            return name in self.class_arrays if name else False
        if isinstance(expr, ast.Subscript):
            return self.arrayish(expr.value)
        if isinstance(expr, ast.BinOp):
            return self.arrayish(expr.left) or self.arrayish(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return self.arrayish(expr.operand)
        if isinstance(expr, ast.IfExp):
            return self.arrayish(expr.body) or self.arrayish(expr.orelse)
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute):
                if _is_np(func.value):
                    return True
                if func.attr in (
                    _METHOD_ALLOCS | {"ravel", "reshape", "view", "transpose", "take"}
                ):
                    return self.arrayish(func.value)
        return False


class _ModuleHotAnalysis:
    """Everything RPR101/RPR102 need to know about one module."""

    def __init__(self, module: ModuleUnderCheck):
        self.module = module
        self.ok_lines = _alloc_ok_lines(module.source)
        self.functions: dict[str, _Fn] = {}
        self.class_arrays: dict[str, set[str]] = {}
        self.class_counters: dict[str, set[str]] = {}
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef):
                self._add_function(node, node.name, None)
            elif isinstance(node, ast.ClassDef):
                arrays = self._collect_class_arrays(node)
                self.class_arrays[node.name] = arrays
                self.class_counters[node.name] = self._collect_class_counters(node)
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        self._add_function(
                            item, f"{node.name}.{item.name}", node.name
                        )
        self._summarize()

    # -- indexing ---------------------------------------------------------------

    def _collect_class_arrays(self, cls: ast.ClassDef) -> set[str]:
        """``self.X`` attributes assigned from numpy expressions anywhere."""
        arrays: set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            produces = isinstance(value, ast.Call) and (
                isinstance(value.func, ast.Attribute) and _is_np(value.func.value)
            )
            if not produces:
                continue
            for target in node.targets:
                name = dotted_name(target)
                if name and name.startswith("self."):
                    arrays.add(name)
        return arrays

    def _collect_class_counters(self, cls: ast.ClassDef) -> set[str]:
        """``self.X`` attributes bound to telemetry counter handles.

        A pre-bound ``recorder.counter(...)`` handle is a scalar
        accumulator (``Counter.add`` increments an int), not a growing
        container, so its ``.add()`` is hot-path safe and exempt from
        the growth-method check.
        """
        handles: set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            produces = (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "counter"
            )
            if not produces:
                continue
            for target in node.targets:
                name = dotted_name(target)
                if name and name.startswith("self."):
                    handles.add(name)
        return handles

    def _is_hot(self, fn: ast.FunctionDef, qualname: str) -> bool:
        if fn.name in _SETUP_NAMES:
            return False
        for dec in fn.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name == "hot_path":
                return True
        return qualname in HOT_PATH_REGISTRY

    def _add_function(
        self, fn: ast.FunctionDef, qualname: str, class_name: str | None
    ) -> None:
        rec = _Fn(
            node=fn,
            qualname=qualname,
            class_name=class_name,
            hot=self._is_hot(fn, qualname),
        )
        env = _ArrayEnv(fn, self.class_arrays.get(class_name or "", set()))
        for stmt in fn.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self._scan_call(rec, node, class_name)
                elif isinstance(node, ast.BinOp):
                    self._scan_binop(rec, node, env)
                elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    self._scan_assignment(rec, node)
        self.functions[qualname] = rec

    def _scan_call(
        self, rec: _Fn, node: ast.Call, class_name: str | None
    ) -> None:
        func = node.func
        ok = _node_is_alloc_ok(node, self.ok_lines)
        if isinstance(func, ast.Attribute) and _is_np(func.value):
            if not ok and func.attr in _ALLOC_FUNCS:
                rec.allocs.append(
                    _Flag(node, f"np.{func.attr} allocates a new array every call")
                )
            elif not ok and func.attr in _OUT_CAPABLE and not _has_out_kwarg(node):
                rec.allocs.append(
                    _Flag(
                        node,
                        f"np.{func.attr} without out= allocates its result; "
                        "route it into a preallocated buffer",
                    )
                )
            return
        if isinstance(func, ast.Name):
            if func.id == "print":
                rec.impure.append(_Flag(node, "calls print()"))
            rec.local_calls.append((func.id, node))
            return
        if isinstance(func, ast.Attribute):
            base = dotted_name(func.value)
            if (
                func.attr in _LOG_METHODS
                and base is not None
                and "log" in base.lower()
            ):
                rec.impure.append(_Flag(node, f"calls {base}.{func.attr}()"))
            if (
                func.attr in _GROWTH_METHODS
                and base is not None
                and base.startswith("self.")
                and base not in self.class_counters.get(class_name or "", set())
            ):
                rec.impure.append(
                    _Flag(
                        node,
                        f"grows persistent container {base} with .{func.attr}()",
                    )
                )
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and class_name is not None
            ):
                rec.local_calls.append((f"{class_name}.{func.attr}", node))

    def _scan_binop(self, rec: _Fn, node: ast.BinOp, env: _ArrayEnv) -> None:
        # Flow-insensitive screen for the summaries; hot functions get a
        # second, reaching-definitions-checked pass in check_alloc().
        if _node_is_alloc_ok(node, self.ok_lines):
            return
        for side in (node.left, node.right):
            name = _operand_name(side)
            if name is not None and (
                name in env.names or name in env.class_arrays
            ):
                rec.allocs.append(
                    _Flag(
                        node,
                        f"binary operator on array {name!r} allocates a "
                        "temporary; use an in-place or out= form",
                    )
                )
                return
        for side in (node.left, node.right):
            if isinstance(side, ast.Call) and env.arrayish(side):
                method = side.func
                if (
                    isinstance(method, ast.Attribute)
                    and method.attr in _METHOD_ALLOCS
                ):
                    return  # already flagged as a method allocation
        return

    def _scan_assignment(
        self, rec: _Fn, node: ast.Assign | ast.AugAssign | ast.AnnAssign
    ) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                continue  # self.x = ... is the object's own state
            base = dotted_name(target.value)
            rec.impure.append(
                _Flag(
                    target,
                    f"writes attribute {target.attr!r} of non-self object "
                    f"{base or '<expr>'!r}",
                )
            )

    # -- interprocedural summaries ----------------------------------------------

    def _summarize(self) -> None:
        # Method allocations (.astype/.copy) contribute to summaries too.
        for rec in self.functions.values():
            env = _ArrayEnv(
                rec.node, self.class_arrays.get(rec.class_name or "", set())
            )
            for stmt in rec.node.body:
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _METHOD_ALLOCS
                        and env.arrayish(node.func.value)
                        and not _node_is_alloc_ok(node, self.ok_lines)
                    ):
                        rec.allocs.append(
                            _Flag(
                                node,
                                f".{node.func.attr}() allocates a copy of "
                                f"{_operand_name(node.func.value) or 'an array'!r}",
                            )
                        )
        self.alloc_reason: dict[str, str] = {}
        self.impure_reason: dict[str, str] = {}
        for qual, rec in self.functions.items():
            if rec.allocs:
                flag = rec.allocs[0]
                self.alloc_reason[qual] = (
                    f"{flag.message} (line {getattr(flag.node, 'lineno', '?')})"
                )
            if rec.impure:
                flag = rec.impure[0]
                self.impure_reason[qual] = (
                    f"{flag.message} (line {getattr(flag.node, 'lineno', '?')})"
                )
        changed = True
        while changed:
            changed = False
            for qual, rec in self.functions.items():
                for callee, call in rec.local_calls:
                    if callee not in self.functions or callee == qual:
                        continue
                    if _node_is_alloc_ok(call, self.ok_lines):
                        continue
                    if callee in self.alloc_reason and qual not in self.alloc_reason:
                        self.alloc_reason[qual] = f"calls {callee.split('.')[-1]}()"
                        changed = True
                    if (
                        callee in self.impure_reason
                        and qual not in self.impure_reason
                    ):
                        self.impure_reason[qual] = f"calls {callee.split('.')[-1]}()"
                        changed = True

    # -- per-rule finding enumeration -------------------------------------------

    def hot_functions(self) -> Iterator[_Fn]:
        """Records for every hot function in the module."""
        for rec in self.functions.values():
            if rec.hot:
                yield rec

    def summary_call_flags(self, rec: _Fn, reasons: dict[str, str]) -> Iterator[_Flag]:
        """Call-site flags for hot calls into flagged same-module helpers."""
        for callee, call in rec.local_calls:
            target = self.functions.get(callee)
            if target is None or callee == rec.qualname:
                continue
            if _node_is_alloc_ok(call, self.ok_lines):
                continue
            if target.hot:
                continue  # the callee is checked in its own right
            if callee in reasons:
                yield _Flag(
                    call,
                    f"calls {callee!r}, which is not hot-path safe: "
                    f"{reasons[callee]}",
                )


def _operand_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Subscript):
        expr = expr.value
    return dotted_name(expr)


def _function_cfg(fn: ast.FunctionDef) -> tuple[CFG, list[str]]:
    args = fn.args
    params = [
        a.arg
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ]
    if args.vararg:
        params.append(args.vararg.arg)
    if args.kwarg:
        params.append(args.kwarg.arg)
    return build_cfg(fn.body), params


class HotPathAllocationRule(Rule):
    """RPR101: hot paths may not allocate arrays per call."""

    id = "RPR101"
    title = "no allocation in streaming hot paths"
    explanation = (
        "Functions marked @hot_path (or registered in "
        "repro.util.hotpath.HOT_PATH_REGISTRY) form the per-generation "
        "streaming kernels whose throughput the paper's R metric measures. "
        "Any per-call allocation — np.zeros/np.empty/np.copy/np.concatenate, "
        "an out=-capable ufunc without out=, .astype()/.copy() on an array, "
        "or a binary operator on array-typed operands (which always builds a "
        "temporary) — turns the kernel into an allocator benchmark and "
        "invalidates BENCH_kernels.json. Array-typedness is inferred with "
        "reaching definitions over the function's control-flow graph, and "
        "calls into same-module helpers are checked through interprocedural "
        "summaries. Deliberate setup-region allocations are exempted with a "
        "'# repro: alloc-ok' comment on the offending line."
    )

    def check(self, module: ModuleUnderCheck) -> Iterator[Diagnostic]:
        """Flag per-call allocations inside hot functions."""
        analysis = _ModuleHotAnalysis(module)
        for rec in analysis.hot_functions():
            flagged: set[tuple[int, int]] = set()
            for flag in rec.allocs:
                key = (
                    getattr(flag.node, "lineno", 0),
                    getattr(flag.node, "col_offset", 0),
                )
                if key in flagged:
                    continue
                flagged.add(key)
                yield self.diagnostic(
                    module,
                    flag.node,
                    f"hot path {rec.qualname!r} {_reword(flag.message)}",
                )
            yield from self._dataflow_binops(module, analysis, rec, flagged)
            for flag in analysis.summary_call_flags(rec, analysis.alloc_reason):
                yield self.diagnostic(
                    module,
                    flag.node,
                    f"hot path {rec.qualname!r} {flag.message}",
                )

    def _dataflow_binops(
        self,
        module: ModuleUnderCheck,
        analysis: _ModuleHotAnalysis,
        rec: _Fn,
        flagged: set[tuple[int, int]],
    ) -> Iterator[Diagnostic]:
        """Reaching-definitions pass: array temporaries the flat screen missed.

        A name is array-typed *at a use* when an array-producing
        definition reaches it — this catches e.g. a name that is an int
        on one path and an array on the rearmost loop path.
        """
        env = _ArrayEnv(
            rec.node, analysis.class_arrays.get(rec.class_name or "", set())
        )
        cfg, params = _function_cfg(rec.node)
        rd = ReachingDefinitions(cfg, params)
        array_defs = {
            d for d in rd.definitions() if _def_is_array(d, rd, env)
        }
        for node in cfg.statement_nodes():
            stmt = node.stmt
            assert stmt is not None
            reaching = rd.reaching_in(node.index)
            for expr in ast.walk(stmt):
                if not isinstance(expr, ast.BinOp):
                    continue
                if _node_is_alloc_ok(expr, analysis.ok_lines):
                    continue
                key = (expr.lineno, expr.col_offset)
                if key in flagged:
                    continue
                for side in (expr.left, expr.right):
                    name = _operand_name(side)
                    if name is None:
                        continue
                    if name in env.class_arrays:
                        reached = True
                    else:
                        reached = any(
                            d.name == name and d in array_defs for d in reaching
                        )
                    if reached:
                        flagged.add(key)
                        yield self.diagnostic(
                            module,
                            expr,
                            f"hot path {rec.qualname!r} applies a binary "
                            f"operator to array {name!r}, allocating a "
                            "temporary; use an in-place or out= form",
                        )
                        break


def _def_is_array(
    d: Definition, rd: ReachingDefinitions, env: _ArrayEnv
) -> bool:
    if d.kind == "param":
        return d.name in env.params
    stmt = rd.def_stmt(d)
    if stmt is None:
        return False
    if d.kind == "mutate":
        # out=/copyto targets and subscript stores hold arrays by construction.
        return True
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        value = stmt.value
        return value is not None and env.arrayish(value)
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return env.arrayish(stmt.iter)
    return False


def _reword(message: str) -> str:
    """Make the stored flag message read as a predicate of the hot path."""
    if message.startswith(("np.", "binary", ".")):
        verb = "allocates:" if not message.startswith("binary") else ""
        return f"{verb} {message}".strip()
    return message


class HotPathPurityRule(Rule):
    """RPR102: hot paths may not do I/O or grow persistent state."""

    id = "RPR102"
    title = "no I/O or persistent-state growth in hot paths"
    explanation = (
        "Hot streaming kernels run once per lattice generation; a print(), "
        "a logging call, an attribute write to a foreign object, or an "
        "append/update on persistent self.* containers inside one turns a "
        "fixed-cost kernel into one with unbounded side effects (GIL-held "
        "I/O stalls, containers that grow with simulated time, action at a "
        "distance on shared objects). Writes to the object's own attributes "
        "and to preallocated buffers are allowed; growth methods "
        "(append/extend/add/update/...) on self.* and writes through other "
        "objects are not. Same-module helpers are checked via call "
        "summaries, and '# repro: noqa[RPR102]' suppresses a finding on "
        "one line."
    )

    def check(self, module: ModuleUnderCheck) -> Iterator[Diagnostic]:
        """Flag I/O and persistent-state growth inside hot functions."""
        analysis = _ModuleHotAnalysis(module)
        for rec in analysis.hot_functions():
            for flag in rec.impure:
                yield self.diagnostic(
                    module,
                    flag.node,
                    f"hot path {rec.qualname!r} {flag.message}",
                )
            for flag in analysis.summary_call_flags(rec, analysis.impure_reason):
                yield self.diagnostic(
                    module,
                    flag.node,
                    f"hot path {rec.qualname!r} {flag.message}",
                )
