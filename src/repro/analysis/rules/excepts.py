"""RPR005 — no bare ``except:`` clauses.

A bare ``except:`` swallows ``KeyboardInterrupt`` and ``SystemExit``
along with the error it meant to catch, turning a Ctrl-C into silent
corruption of a long simulation run.  Catch a concrete exception type,
or ``Exception`` if the intent really is "anything recoverable".
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules.base import ModuleUnderCheck, Rule

__all__ = ["BareExceptRule"]


class BareExceptRule(Rule):
    """Flag ``except:`` handlers with no exception type."""

    id = "RPR005"
    title = "no bare except clauses"

    def check(self, module: ModuleUnderCheck) -> Iterator[Diagnostic]:
        """Scan every exception handler for a missing type."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.diagnostic(
                    module,
                    node,
                    "bare 'except:' also catches KeyboardInterrupt/SystemExit; "
                    "name the exception type (or Exception)",
                )
