"""RPR004 — numpy dtype discipline in the LGCA kernels.

Lattice-gas state lives in packed ``uint8``/``uint16`` planes; the
arrays that drive them (probability fields, time series, momenta) are
``float64`` *by decision*, not by accident.  ``np.zeros(...)`` without
a dtype silently defaults to ``float64`` — fine until someone "fixes"
a kernel by assigning through it and upcasts a bit-plane, exactly the
class of silent vectorized-CA bug Szkoda et al. (2012) report.  In
``lgca/`` every array *creation* must therefore state its dtype.

``*_like`` constructors and functions that inherit a dtype from their
input (``np.roll``, slicing, …) are exempt — they cannot upcast.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules.base import ModuleUnderCheck, Rule

__all__ = ["ExplicitDtypeRule"]

_CREATION_FUNCS = {"zeros", "ones", "empty", "full"}


class ExplicitDtypeRule(Rule):
    """Require an explicit ``dtype=`` on numpy array creation in lgca/."""

    id = "RPR004"
    title = "explicit dtype on numpy array creation"
    scopes = ("lgca",)

    def check(self, module: ModuleUnderCheck) -> Iterator[Diagnostic]:
        """Scan for ``np.zeros/ones/empty/full`` calls without ``dtype=``."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")
                and func.attr in _CREATION_FUNCS
            ):
                continue
            has_dtype = any(kw.arg == "dtype" for kw in node.keywords)
            # np.full(shape, fill, dtype) / np.zeros(shape, dtype) as a
            # positional second/third argument also counts as explicit.
            positional_dtype_slot = 2 if func.attr == "full" else 1
            has_dtype = has_dtype or len(node.args) > positional_dtype_slot
            if not has_dtype:
                yield self.diagnostic(
                    module,
                    node,
                    f"np.{func.attr} without an explicit dtype defaults to "
                    "float64; state the intended dtype",
                )
