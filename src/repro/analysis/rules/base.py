"""Rule plumbing: the module-under-check context and the rule base class.

Each design rule is a small class with a stable id (``RPR001`` …), a
severity, and an optional *scope* — the set of package directory names
it applies to.  Scoping is by path component, so a rule scoped to
``("core",)`` fires on ``src/repro/core/wsa.py`` and on a test fixture
``fixtures/core/bad.py`` alike.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import PurePath
from typing import TYPE_CHECKING, Iterator

from repro.analysis.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.dataflow.project import ProjectGraph

__all__ = ["ModuleUnderCheck", "Rule"]


@dataclass(frozen=True)
class ModuleUnderCheck:
    """A parsed source file handed to each rule.

    Attributes
    ----------
    path:
        Display path (used in diagnostics and for scope matching).
    source:
        Raw file text.
    tree:
        The parsed :class:`ast.Module`.
    project:
        The cross-file :class:`~repro.analysis.dataflow.project.ProjectGraph`
        when the engine linted a whole path set, else ``None`` — rules
        using it must degrade gracefully to single-file facts.
    """

    path: str
    source: str
    tree: ast.Module
    project: "ProjectGraph | None" = None

    @property
    def path_parts(self) -> tuple[str, ...]:
        """Path components, for scope matching."""
        return PurePath(self.path).parts

    @property
    def is_package_init(self) -> bool:
        """Whether this file is a package ``__init__.py``."""
        return PurePath(self.path).name == "__init__.py"


class Rule(ABC):
    """Base class for design rules.

    Class attributes
    ----------------
    id:
        Stable identifier (``RPR001`` …) used in diagnostics, ``--select``
        and ``--ignore``.
    title:
        Short human-readable name (shown by ``repro lint --list-rules``).
    severity:
        Default :class:`Severity` for this rule's findings.
    scopes:
        Directory names the rule is restricted to, or ``None`` for all
        files.
    explanation:
        Long-form rationale shown by ``repro lint --explain <id>``;
        empty means the title is all there is to say.
    """

    id: str = "RPR000"
    title: str = "unnamed rule"
    severity: Severity = Severity.ERROR
    scopes: tuple[str, ...] | None = None
    explanation: str = ""

    def applies_to(self, module: ModuleUnderCheck) -> bool:
        """Whether this rule should run on ``module`` (scope check)."""
        if self.scopes is None:
            return True
        return bool(set(self.scopes) & set(module.path_parts))

    @abstractmethod
    def check(self, module: ModuleUnderCheck) -> Iterator[Diagnostic]:
        """Yield diagnostics for every violation in ``module``."""

    def diagnostic(
        self, module: ModuleUnderCheck, node: ast.AST, message: str
    ) -> Diagnostic:
        """Build a :class:`Diagnostic` anchored at ``node``."""
        return Diagnostic(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            severity=self.severity,
            message=message,
        )
