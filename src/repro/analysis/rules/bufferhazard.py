"""RPR110 — double-buffer hazard detection for streaming engines.

The streaming engines are built around Kugelmass–Squier–Steiglitz's
observation that a lattice update must read generation *t* while writing
generation *t+1*: every engine therefore keeps a front/back buffer pair
and swaps bindings between ticks (``src, dst = dst, src``).  Mutating an
array *and* reading the same array elsewhere in the same tick body
silently computes with half-updated state — the classic in-place
propagation bug, invisible to tests on symmetric initial conditions.

The rule runs on classes that stream: anything deriving (transitively,
resolved through the cross-file project graph when available) from
``StreamingEngineCore``, plus the registered stepper/engine classes in
:data:`ENGINE_CLASS_NAMES`.  For every loop inside such a class's
methods it builds the loop's CFG — whose back edge makes "written on a
previous iteration" visible — and reports any array that has an
in-place *mutation* (``buf[...] = x``, ``out=buf``, ``np.copyto(buf, …)``)
reaching a *read* of the same name at a different statement.

Rebinding swaps are binds and kill mutate definitions, so correctly
double-buffered loops are clean.  Augmented element-wise updates
(``acc[...] |= x``) read and write by construction and are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow.cfg import build_cfg
from repro.analysis.dataflow.reaching import (
    ReachingDefinitions,
    dotted_name,
    stmt_uses,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules.base import ModuleUnderCheck, Rule

__all__ = ["BufferHazardRule", "ENGINE_CLASS_NAMES"]

#: Streaming classes checked even without a resolvable base chain —
#: the machine-registry engines and the lgca steppers.
ENGINE_CLASS_NAMES = frozenset(
    {
        "StreamingEngineCore",
        "SerialPipelineEngine",
        "WideSerialEngine",
        "PartitionedEngine",
        "ExtensibleSerialEngine",
        "ReferenceStepper",
        "BitplaneStepper",
    }
)

_ROOT_CLASS = "StreamingEngineCore"


def _is_pure_rebind(stmt: ast.stmt) -> bool:
    """Whether ``stmt`` only shuffles name bindings (e.g. the swap).

    ``src, dst = dst, src`` mentions the arrays but never touches their
    elements — it must not count as a *read* of mutated storage.
    """
    if not isinstance(stmt, ast.Assign):
        return False
    for node in ast.walk(stmt):
        if not isinstance(
            node,
            (ast.Assign, ast.Name, ast.Tuple, ast.List, ast.Starred, ast.expr_context),
        ):
            return False
    return True


def _subscript_store_bases(stmt: ast.stmt) -> set[str]:
    """Base names of subscript store targets (``x`` of ``x[...] = ...``)."""
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        out: set[str] = set()
        for target in targets:
            elts = (
                target.elts
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
            for elt in elts:
                if isinstance(elt, ast.Subscript):
                    name = dotted_name(elt.value)
                    if name is not None:
                        out.add(name)
        return out
    return set()


def _base_names(cls: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in cls.bases:
        node: ast.expr = base
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Name):
            names.add(node.id)
    return names


class BufferHazardRule(Rule):
    """RPR110: no same-tick read of an array mutated in the tick body."""

    id = "RPR110"
    title = "streaming buffers must not be read and written in one tick"
    explanation = (
        "Streaming engines implement the paper's update discipline: read "
        "generation t, write generation t+1, swap. A loop body that both "
        "mutates an array in place (buf[...] = x, np.ufunc(..., out=buf), "
        "np.copyto(buf, ...)) and reads the same array at another "
        "statement computes with half-updated state — results depend on "
        "site visit order and the bug hides on symmetric initial "
        "conditions. The rule applies to classes deriving from "
        "StreamingEngineCore (resolved transitively through the project "
        "graph) and to the registered engine/stepper classes; it runs "
        "reaching definitions over each loop body, back edge included, so "
        "writes from the previous iteration count. Rebinding the names "
        "(src, dst = dst, src) kills the in-place definitions, so proper "
        "double buffering passes; in-place accumulations (buf |= x) are "
        "exempt. Route the write into the back buffer and swap bindings "
        "between ticks, or copy explicitly outside the loop."
    )

    def _class_is_engine(self, module: ModuleUnderCheck, cls: ast.ClassDef) -> bool:
        bases = _base_names(cls)
        if cls.name in ENGINE_CLASS_NAMES or bases & ENGINE_CLASS_NAMES:
            return True
        if module.project is not None:
            resolved = module.project.resolve_class(cls.name)
            if resolved is not None and module.project.derives_from(
                resolved, _ROOT_CLASS
            ):
                return True
        return False

    def check(self, module: ModuleUnderCheck) -> Iterator[Diagnostic]:
        """Flag read-after-in-place-write hazards in engine tick loops."""
        for cls in module.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            if not self._class_is_engine(module, cls):
                continue
            for item in cls.body:
                if isinstance(item, ast.FunctionDef):
                    yield from self._check_method(module, cls, item)

    def _outer_loops(
        self, fn: ast.FunctionDef
    ) -> Iterator[ast.For | ast.AsyncFor | ast.While]:
        """Outermost loops of ``fn`` — each is one tick-iteration scope."""
        stack: list[ast.stmt] = list(fn.body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                yield stmt
            elif isinstance(stmt, (ast.If, ast.With, ast.AsyncWith, ast.Try)):
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.stmt):
                        stack.append(child)
                    elif isinstance(child, ast.excepthandler):
                        stack.extend(child.body)

    def _check_method(
        self, module: ModuleUnderCheck, cls: ast.ClassDef, fn: ast.FunctionDef
    ) -> Iterator[Diagnostic]:
        for loop in self._outer_loops(fn):
            cfg = build_cfg([loop])
            rd = ReachingDefinitions(cfg)
            reported: set[tuple[str, int]] = set()
            for node in cfg.statement_nodes():
                stmt = node.stmt
                assert stmt is not None
                uses = stmt_uses(stmt)
                if not uses or _is_pure_rebind(stmt):
                    continue
                # Same-statement hazard: a subscript store whose RHS (or
                # index) reads the array being stored into — the classic
                # in-place propagation bug.  Explicit in-place calls
                # (out=x reading x) are deliberate and exempt.
                for name in _subscript_store_bases(stmt):
                    if name not in uses:
                        continue
                    key = (name, getattr(stmt, "lineno", 0))
                    if key in reported:
                        continue
                    reported.add(key)
                    yield self.diagnostic(
                        module,
                        stmt,
                        f"{cls.name}.{fn.name} stores into {name!r} while "
                        "reading it in the same statement inside a tick "
                        "loop; the update sees half-new state — write a "
                        "back buffer and swap bindings instead",
                    )
                for d in rd.reaching_in(node.index):
                    if d.kind != "mutate" or d.node == node.index:
                        continue
                    if d.name not in uses:
                        continue
                    def_stmt = rd.def_stmt(d)
                    def_line = getattr(def_stmt, "lineno", "?")
                    key = (d.name, getattr(stmt, "lineno", 0))
                    if key in reported:
                        continue
                    reported.add(key)
                    yield self.diagnostic(
                        module,
                        stmt,
                        f"{cls.name}.{fn.name} reads {d.name!r} at line "
                        f"{getattr(stmt, 'lineno', '?')} after mutating it in "
                        f"place at line {def_line} within the same tick body; "
                        "double-buffer the update (write the back buffer and "
                        "swap bindings) instead",
                    )
