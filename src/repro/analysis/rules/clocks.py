"""RPR103 — raw stdlib clocks belong to :mod:`repro.telemetry`.

Timing in this codebase flows through the telemetry spine: components
take an injectable ``Clock`` (``repro.telemetry.MONOTONIC`` /
``PERF_COUNTER``) so tests can drive time virtually (``StepClock``) and
every measurement lands in one recorder.  A stray ``time.monotonic()``
or ``time.perf_counter()`` re-opens the door to unfakeable clocks and
scattered ad-hoc timing, so this rule flags any reference to them —
calls *or* bare references (a default argument ``clock=time.monotonic``
is just as unfakeable) — anywhere outside ``repro/telemetry`` itself.

``time.sleep`` is deliberately out of scope: it changes the world
rather than reading it, and the supervisor's poll loop legitimately
sleeps.  Escape hatch: ``# repro: clock-ok`` on the offending line, for
the rare spot that must read a raw clock (e.g. bootstrapping the
telemetry module's own defaults).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules.base import ModuleUnderCheck, Rule

__all__ = ["RawClockRule"]

#: ``time`` attributes that read a high-resolution clock.
_CLOCK_ATTRS = {
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
}

_CLOCK_OK_RE = re.compile(r"#\s*repro:\s*clock-ok")


def _clock_ok_lines(source: str) -> set[int]:
    lines: set[int] = set()
    for i, line in enumerate(source.splitlines(), start=1):
        if _CLOCK_OK_RE.search(line):
            lines.add(i)
    return lines


def _time_aliases(tree: ast.Module) -> set[str]:
    """Local names bound to the ``time`` module (``import time as _t``)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or "time")
    return aliases


class RawClockRule(Rule):
    """RPR103: raw ``time.monotonic``/``perf_counter`` outside telemetry."""

    id = "RPR103"
    title = "raw stdlib clock outside repro.telemetry"
    explanation = (
        "Monotonic and perf-counter clocks must come from repro.telemetry "
        "(MONOTONIC, PERF_COUNTER, or a recorder's .clock) so components "
        "stay testable with a fake StepClock and all timing flows through "
        "one instrumentation spine.  The rule flags calls and bare "
        "references to time.monotonic / time.perf_counter (and their _ns "
        "variants), plus importing those names from the time module.  "
        "time.sleep is allowed.  Silence a deliberate raw read with a "
        "'# repro: clock-ok' comment on the offending line."
    )

    def check(self, module: ModuleUnderCheck) -> Iterator[Diagnostic]:
        """Yield one finding per raw-clock reference outside telemetry."""
        if "telemetry" in module.path_parts:
            return
        ok_lines = _clock_ok_lines(module.source)
        aliases = _time_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module != "time" or node.level:
                    continue
                for alias in node.names:
                    if alias.name in _CLOCK_ATTRS and node.lineno not in ok_lines:
                        yield self.diagnostic(
                            module,
                            node,
                            f"import of time.{alias.name}: take a "
                            "repro.telemetry Clock (MONOTONIC/PERF_COUNTER) "
                            "instead",
                        )
            elif isinstance(node, ast.Attribute):
                if (
                    node.attr in _CLOCK_ATTRS
                    and isinstance(node.value, ast.Name)
                    and node.value.id in aliases
                    and node.lineno not in ok_lines
                ):
                    yield self.diagnostic(
                        module,
                        node,
                        f"raw {node.value.id}.{node.attr}: take a "
                        "repro.telemetry Clock (MONOTONIC/PERF_COUNTER) "
                        "instead",
                    )
