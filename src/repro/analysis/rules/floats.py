"""RPR002 — no ``==`` / ``!=`` on floats in design-model code.

The ``core/`` design models chain closed-form expressions (pin/area
limits, throughput rates) whose values are irrational for realistic
constants; exact equality on such quantities is either dead code or a
latent flaky branch.  Use ``math.isclose`` or an explicit tolerance.

The check is deliberately conservative: it only flags comparisons where
an operand *provably* produces a float (a float literal, a true
division, a ``float(...)`` / ``math.*(...)`` call, or arithmetic over
one of those), so it never misfires on integer identities.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules.base import ModuleUnderCheck, Rule

__all__ = ["FloatEqualityRule"]

_MATH_FLOAT_FUNCS = {
    "sqrt",
    "exp",
    "log",
    "log2",
    "log10",
    "sin",
    "cos",
    "tan",
    "floor",
    "ceil",
    "fabs",
    "hypot",
    "pow",
}


def _is_float_expr(node: ast.expr) -> bool:
    """Whether ``node`` provably evaluates to a Python/NumPy float."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_float_expr(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True  # true division always yields a float
        return _is_float_expr(node.left) or _is_float_expr(node.right)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "float":
            return True
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("math", "np", "numpy")
            and func.attr in _MATH_FLOAT_FUNCS
        ):
            return True
    return False


class FloatEqualityRule(Rule):
    """Flag exact equality comparisons against float-valued expressions."""

    id = "RPR002"
    title = "no float equality in design-model code"
    scopes = ("core",)

    def check(self, module: ModuleUnderCheck) -> Iterator[Diagnostic]:
        """Scan every comparison chain for float ``==`` / ``!=`` links."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_expr(operands[i]) or _is_float_expr(operands[i + 1]):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.diagnostic(
                        module,
                        operands[i],
                        f"exact {symbol} on a float-valued expression; "
                        "use math.isclose or an explicit tolerance",
                    )
