"""RPR003 — public API functions carry type annotations and a docstring.

The ``core/``, ``engines/``, and ``pebbling/`` packages are the paper's
quantitative surface: every public function there encodes a formula or
a machine behavior with units and conventions that a signature alone
cannot convey.  Annotations make the contracts checkable; the docstring
says what the quantity *is*.

Checked: public (non-underscore, non-dunder) functions at module level
and directly inside public classes.  ``self`` / ``cls``, ``*args`` /
``**kwargs``, and property setters/deleters are exempt from the
parameter-annotation requirement.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules.base import ModuleUnderCheck, Rule

__all__ = ["PublicAPIAnnotationRule"]


def _is_accessor_decorator(dec: ast.expr) -> bool:
    """Whether a decorator marks a property setter/deleter/getter."""
    return isinstance(dec, ast.Attribute) and dec.attr in (
        "setter",
        "deleter",
        "getter",
    )


def _is_public_name(name: str) -> bool:
    """Public means no leading underscore (dunders are not public API)."""
    return not name.startswith("_")


class PublicAPIAnnotationRule(Rule):
    """Require annotations + docstrings on the public design-model API."""

    id = "RPR003"
    title = "public API needs annotations and docstrings"
    scopes = ("core", "engines", "pebbling")

    def check(self, module: ModuleUnderCheck) -> Iterator[Diagnostic]:
        """Check module-level and public-class-level function definitions."""
        yield from self._check_body(module, module.tree.body, owner=None)
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and _is_public_name(node.name):
                yield from self._check_body(module, node.body, owner=node.name)

    def _check_body(
        self,
        module: ModuleUnderCheck,
        body: list[ast.stmt],
        owner: str | None,
    ) -> Iterator[Diagnostic]:
        """Check the function definitions directly inside ``body``."""
        for node in body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_public_name(node.name):
                continue
            if any(_is_accessor_decorator(d) for d in node.decorator_list):
                continue
            label = f"{owner}.{node.name}" if owner else node.name
            if ast.get_docstring(node) is None:
                yield self.diagnostic(
                    module, node, f"public function {label!r} has no docstring"
                )
            if node.returns is None:
                yield self.diagnostic(
                    module,
                    node,
                    f"public function {label!r} has no return annotation",
                )
            params = list(node.args.posonlyargs) + list(node.args.args)
            if owner is not None and params and params[0].arg in ("self", "cls"):
                params = params[1:]
            params += list(node.args.kwonlyargs)
            for param in params:
                if param.annotation is None:
                    yield self.diagnostic(
                        module,
                        param,
                        f"parameter {param.arg!r} of public function "
                        f"{label!r} has no type annotation",
                    )
