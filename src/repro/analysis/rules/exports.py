"""RPR006 — ``__all__`` names must exist in the module.

Every package in this repo re-exports its public surface through
``__all__``; a stale entry (renamed function, removed class) makes
``from repro.x import *`` raise at import time — but only for the user
who does it, long after the rename.  This rule resolves each
``__all__`` entry against the module's top-level definitions and
imports, and flags duplicates.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules.base import ModuleUnderCheck, Rule

__all__ = ["DunderAllRule"]


def _literal_all_entries(node: ast.expr) -> list[tuple[str, ast.expr]] | None:
    """Extract ``__all__`` entries from a list/tuple literal, else None."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    entries = []
    for elt in node.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            entries.append((elt.value, elt))
        else:
            return None  # computed __all__ — not statically checkable
    return entries


def _collect_top_level_names(body: list[ast.stmt]) -> tuple[set[str], bool]:
    """Names bound at module top level; second item True on star-imports.

    Recurses into ``if``/``try`` blocks (version-gated imports) but not
    into functions or classes, mirroring what module execution binds.
    """
    names: set[str] = set()
    has_star = False
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    has_star = True
                else:
                    names.add(alias.asname or alias.name)
        elif isinstance(node, ast.If):
            sub, star = _collect_top_level_names(node.body + node.orelse)
            names |= sub
            has_star = has_star or star
        elif isinstance(node, ast.Try):
            blocks = node.body + node.orelse + node.finalbody
            for handler in node.handlers:
                blocks = blocks + handler.body
            sub, star = _collect_top_level_names(blocks)
            names |= sub
            has_star = has_star or star
    return names, has_star


def _target_names(target: ast.expr) -> set[str]:
    """Names bound by an assignment target (handles tuple unpacking)."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: set[str] = set()
        for elt in target.elts:
            out |= _target_names(elt)
        return out
    return set()


class DunderAllRule(Rule):
    """Flag ``__all__`` entries that do not resolve, and duplicates."""

    id = "RPR006"
    title = "__all__ consistency"

    def check(self, module: ModuleUnderCheck) -> Iterator[Diagnostic]:
        """Resolve each ``__all__`` entry against top-level bindings."""
        all_node: ast.expr | None = None
        for node in module.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "__all__"
            ):
                all_node = node.value
        if all_node is None:
            return
        entries = _literal_all_entries(all_node)
        if entries is None:
            return  # computed __all__ (e.g. concatenation) — skip
        defined, has_star = _collect_top_level_names(module.tree.body)
        if has_star:
            return  # star-import makes static resolution unsound
        seen: set[str] = set()
        for name, node in entries:
            if name in seen:
                yield self.diagnostic(
                    module, node, f"duplicate __all__ entry {name!r}"
                )
            seen.add(name)
            if name not in defined:
                yield self.diagnostic(
                    module,
                    node,
                    f"__all__ entry {name!r} is not defined or imported "
                    "in this module",
                )
