"""RPR001 — no mutable default arguments.

A mutable default (``def f(x=[])``) is evaluated once at definition
time and shared across calls; mutating it leaks state between calls.
This is the classic source of "works once, wrong forever after" bugs in
long-lived simulation drivers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules.base import ModuleUnderCheck, Rule

__all__ = ["MutableDefaultRule"]

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}
_MUTABLE_ATTR_CALLS = {"defaultdict", "OrderedDict", "Counter", "deque", "array"}


def _is_mutable_default(node: ast.expr) -> bool:
    """Whether a default-value expression builds a fresh mutable object."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_CALLS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _MUTABLE_ATTR_CALLS:
            return True
    return False


class MutableDefaultRule(Rule):
    """Flag list/dict/set (literal or constructor) default arguments."""

    id = "RPR001"
    title = "no mutable default arguments"

    def check(self, module: ModuleUnderCheck) -> Iterator[Diagnostic]:
        """Scan every function (and lambda) for mutable defaults."""
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            name = getattr(node, "name", "<lambda>")
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.diagnostic(
                        module,
                        default,
                        f"function {name!r} has a mutable default argument; "
                        "use None and create the object inside the body",
                    )
