"""The design-rule registry.

``ALL_RULES`` lists one instance of every rule in id order; the engine
and the CLI ``--select`` / ``--ignore`` flags resolve ids through
:func:`get_rules`.  See ``docs/LINT_RULES.md`` for the catalog.
"""

from __future__ import annotations

from repro.analysis.rules.annotations import PublicAPIAnnotationRule
from repro.analysis.rules.base import ModuleUnderCheck, Rule
from repro.analysis.rules.bufferhazard import BufferHazardRule
from repro.analysis.rules.clocks import RawClockRule
from repro.analysis.rules.defaults import MutableDefaultRule
from repro.analysis.rules.dtypes import ExplicitDtypeRule
from repro.analysis.rules.excepts import BareExceptRule
from repro.analysis.rules.exports import DunderAllRule
from repro.analysis.rules.floats import FloatEqualityRule
from repro.analysis.rules.hotpath import HotPathAllocationRule, HotPathPurityRule

__all__ = [
    "Rule",
    "ModuleUnderCheck",
    "MutableDefaultRule",
    "FloatEqualityRule",
    "PublicAPIAnnotationRule",
    "ExplicitDtypeRule",
    "BareExceptRule",
    "DunderAllRule",
    "HotPathAllocationRule",
    "HotPathPurityRule",
    "RawClockRule",
    "BufferHazardRule",
    "ALL_RULES",
    "get_rules",
]

#: One instance of every rule, in id order.  Ids are unique and sorted
#: but intentionally non-contiguous: the 1xx block holds the dataflow
#: rule families (101/102 hot-path discipline, 103 clock discipline,
#: 110 buffer hazards).
ALL_RULES: tuple[Rule, ...] = (
    MutableDefaultRule(),
    FloatEqualityRule(),
    PublicAPIAnnotationRule(),
    ExplicitDtypeRule(),
    BareExceptRule(),
    DunderAllRule(),
    HotPathAllocationRule(),
    HotPathPurityRule(),
    RawClockRule(),
    BufferHazardRule(),
)


def get_rules(
    select: list[str] | None = None, ignore: list[str] | None = None
) -> tuple[Rule, ...]:
    """Resolve a rule subset from ``--select`` / ``--ignore`` id lists.

    Parameters
    ----------
    select:
        Rule ids to run (default: all).
    ignore:
        Rule ids to drop after selection.

    Raises
    ------
    ValueError
        on an id that names no known rule.
    """
    known = {rule.id for rule in ALL_RULES}
    for rule_id in (select or []) + (ignore or []):
        if rule_id not in known:
            raise ValueError(
                f"unknown rule id {rule_id!r}; known: {sorted(known)}"
            )
    rules = ALL_RULES
    if select:
        rules = tuple(r for r in rules if r.id in select)
    if ignore:
        rules = tuple(r for r in rules if r.id not in ignore)
    return rules
