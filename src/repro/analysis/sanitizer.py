"""The ``repro sanitize`` check registry and runner.

Maps stable check-group names to the invariant functions in
:mod:`repro.analysis.invariants`.  A group that *raises* is converted
into a failed :class:`~repro.analysis.invariants.CheckResult` — the
sanitizer's contract is that it always reports, never crashes.
"""

from __future__ import annotations

import json
from typing import Callable

from repro.analysis.invariants import (
    CheckResult,
    check_design_algebra,
    check_fhp_tables,
    check_hpp_table,
    check_machine_registry,
    check_ndim_tables,
    check_pebble_legality,
    check_spa_engine_formulas,
    check_wsa_engine_formulas,
)

__all__ = ["CHECK_GROUPS", "available_checks", "run_checks", "format_results_json"]

#: Ordered registry: group name -> zero-argument callable returning results.
CHECK_GROUPS: dict[str, Callable[[], list[CheckResult]]] = {
    "hpp": check_hpp_table,
    "fhp": check_fhp_tables,
    "ndim": check_ndim_tables,
    "pebble": check_pebble_legality,
    "wsa": check_wsa_engine_formulas,
    "spa": check_spa_engine_formulas,
    "machines": check_machine_registry,
    "design": check_design_algebra,
}


def available_checks() -> list[str]:
    """The registered check-group names, in run order."""
    return list(CHECK_GROUPS)


def run_checks(names: list[str] | None = None) -> list[CheckResult]:
    """Run the named check groups (default: all) and collect results.

    Raises
    ------
    ValueError
        on a name that matches no registered group.
    """
    selected = names or available_checks()
    unknown = [n for n in selected if n not in CHECK_GROUPS]
    if unknown:
        raise ValueError(
            f"unknown check group(s) {unknown}; available: {available_checks()}"
        )
    results: list[CheckResult] = []
    for name in selected:
        try:
            results.extend(CHECK_GROUPS[name]())
        except Exception as exc:  # the harness reports, it never crashes
            results.append(
                CheckResult(
                    name=f"{name}/<crashed>",
                    passed=False,
                    detail=f"{type(exc).__name__}: {exc}",
                )
            )
    return results


def format_results_json(results: list[CheckResult]) -> str:
    """Deterministic JSON rendering of sanitizer results."""
    payload = {
        "version": 1,
        "summary": {
            "total": len(results),
            "passed": sum(1 for r in results if r.passed),
            "failed": sum(1 for r in results if not r.passed),
        },
        "checks": [r.to_dict() for r in results],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
