"""Exact minimum-I/O pebbling for small graphs.

The paper's closing agenda: "A further goal would be to discover an
optimal pebbling for any problem in this class, and thereby discover an
architecture which is optimal with regard to input/output complexity."
Optimal pebbling is intractable in general (PSPACE-hard for related
games), but for *small* computation graphs the minimum I/O is computable
exactly by shortest-path search over game configurations — enough to

* calibrate how far the constructive schedules sit from true optimal,
* sandwich the Lemma 1/2 lower bound from above with the real optimum.

The search is 0-1 Dijkstra over states ``(red set, blue set)`` encoded
as bitmasks: rule-1 removals and rule-4 computations cost 0, rule-2/3
I/O moves cost 1.  Two standard prunings keep it exact:

* blue pebbles are never removed (removing one can never reduce I/O);
* a red pebble is only removed when the budget forces it (removal is
  deferred into the moves that need space, which preserves optimality
  because removal is free and unrestricted).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.pebbling.graph import ComputationGraph
from repro.util.validation import check_positive

__all__ = ["OptimalPebbling", "minimum_io", "optimal_pebbling"]

_MAX_VERTICES = 16


@dataclass(frozen=True)
class OptimalPebbling:
    """Result of the exact search.

    Attributes
    ----------
    io_moves:
        Q(S) — the minimum I/O moves of any complete computation.
    storage:
        The red-pebble budget searched under.
    states_expanded:
        Search-effort diagnostic.
    """

    io_moves: int
    storage: int
    states_expanded: int


def _bit(i: int) -> int:
    return 1 << i


def minimum_io(graph: ComputationGraph, storage: int) -> int:
    """Q(S): exact minimum I/O moves to compute ``graph`` with S reds."""
    return optimal_pebbling(graph, storage).io_moves


def optimal_pebbling(graph: ComputationGraph, storage: int) -> OptimalPebbling:
    """Exact min-I/O search (see module docstring).

    Raises
    ------
    ValueError
        If the graph exceeds the tractable size (16 vertices) or no
        complete computation exists within the budget (S smaller than
        the maximum in-degree + 1).
    """
    storage = check_positive(storage, "storage", integer=True)
    n = graph.num_vertices
    if n > _MAX_VERTICES:
        raise ValueError(
            f"graph has {n} vertices; exact search is capped at {_MAX_VERTICES}"
        )
    max_indeg = max(
        (graph.in_degree(v) for v in range(graph.num_sites, n)), default=0
    )
    if storage < max_indeg + 1:
        raise ValueError(
            f"storage={storage} cannot compute a vertex with {max_indeg} "
            "predecessors (need in-degree + 1 red pebbles)"
        )

    preds_mask = [0] * n
    for v in range(n):
        m = 0
        for u in graph.predecessors(v):
            m |= _bit(int(u))
        preds_mask[v] = m
    outputs_mask = 0
    for v in graph.outputs():
        outputs_mask |= _bit(int(v))
    inputs_mask = 0
    for v in graph.inputs():
        inputs_mask |= _bit(int(v))

    all_mask = (1 << n) - 1
    start = (0, inputs_mask)  # (red, blue)
    dist: dict[tuple[int, int], int] = {start: 0}
    heap: list[tuple[int, int, int]] = [(0, 0, inputs_mask)]
    expanded = 0

    def popcount(x: int) -> int:
        return x.bit_count()

    while heap:
        cost, red, blue = heapq.heappop(heap)
        if dist.get((red, blue), -1) != cost:
            continue
        if blue & outputs_mask == outputs_mask:
            return OptimalPebbling(
                io_moves=cost, storage=storage, states_expanded=expanded
            )
        expanded += 1
        red_count = popcount(red)

        def push(nred: int, nblue: int, ncost: int) -> None:
            key = (nred, nblue)
            if dist.get(key, 1 << 60) > ncost:
                dist[key] = ncost
                heapq.heappush(heap, (ncost, nred, nblue))

        # Rule 4 (free): compute any vertex whose preds are all red.
        for v in range(n):
            bv = _bit(v)
            if red & bv or preds_mask[v] == 0:
                continue
            if red & preds_mask[v] == preds_mask[v]:
                if red_count < storage:
                    push(red | bv, blue, cost)
                else:
                    # slide: evict one red (not a pred of v) to make room
                    evictable = red & ~preds_mask[v]
                    e = evictable
                    while e:
                        low = e & -e
                        push((red & ~low) | bv, blue, cost)
                        e &= e - 1

        # Rule 2 (I/O): read a blue value into a red pebble.
        readable = blue & ~red
        r = readable
        while r:
            low = r & -r
            if red_count < storage:
                push(red | low, blue, cost + 1)
            else:
                evictable = red
                e = evictable
                while e:
                    el = e & -e
                    push((red & ~el) | low, blue, cost + 1)
                    e &= e - 1
            r &= r - 1

        # Rule 3 (I/O): write a red value to blue.
        writable = red & ~blue
        w = writable
        while w:
            low = w & -w
            push(red, blue | low, cost + 1)
            w &= w - 1

        # Rule 1 (free): plain removals — useful before several reads.
        e = red
        while e:
            low = e & -e
            push(red & ~low, blue, cost)
            e &= e - 1

    raise ValueError("search exhausted without reaching the goal (unexpected)")
