"""Lines, line covers, line-time, and line-spread (Lemmas 3–8 machinery).

For an LGCA computation graph the natural complete set of lines is
``ℓ_x = ((x,0), (x,1), …, (x,T))`` — one vertex-disjoint input-to-output
path per lattice site, covering every vertex.  The three derived
quantities the bounds use:

* ``t_G(u, j)`` — lines covered by paths of length ≤ j from u, which by
  Lemmas 5–7 equals the number of lattice vertices reachable from u's
  site in ≤ j steps (when a length-j path exists at all);
* the **line-spread** ``T_G(j) = min_u t_G(u, j)`` (corner vertices
  minimize it);
* the **line-time** ``τ(k)`` — the max number of same-line vertices in
  one subset over *all* k-partitions; intractable to maximize exactly,
  so code reports (a) the Theorem 4 analytic upper bound and (b) the
  realized value of explicit partitions (which must respect the bound —
  a checked consequence, not an assumption).
"""

from __future__ import annotations

import math

import numpy as np

from repro.pebbling.graph import ComputationGraph
from repro.pebbling.partition import KPartition
from repro.util.validation import check_nonnegative

__all__ = [
    "line_of_vertex",
    "complete_line_set",
    "lines_covered_by_ball",
    "line_spread",
    "max_line_vertices_per_subset",
]


def line_of_vertex(graph: ComputationGraph, v: int) -> np.ndarray:
    """The line ℓ_x through vertex v: (x, 0), (x, 1), …, (x, T)."""
    site_idx = graph.site_index_of(v)
    return site_idx + graph.num_sites * np.arange(graph.num_layers, dtype=np.int64)


def complete_line_set(graph: ComputationGraph) -> list[np.ndarray]:
    """ℒ = {ℓ_x | x ∈ V} — vertex-disjoint lines covering every vertex."""
    return [
        site + graph.num_sites * np.arange(graph.num_layers, dtype=np.int64)
        for site in range(graph.num_sites)
    ]


def lines_covered_by_ball(graph: ComputationGraph, u: int, j: int) -> int | float:
    """t_G(u, j): lines covered by paths of length ≤ j from u.

    Per the paper's definition this is ∞ when no vertex at distance
    exactly j from u exists (u too close to the last layer); otherwise,
    by Lemmas 5–7, it equals the number of lattice vertices within j
    steps of u's site.
    """
    j = check_nonnegative(j, "j", integer=True)
    t = graph.layer_of(u)
    if t + j > graph.generations:
        return math.inf
    return graph.lattice.reachable_within(graph.site_of(u), j)


def line_spread(graph: ComputationGraph, j: int) -> int | float:
    """T_d(j) = min_u t_G(u, j).

    The minimizing vertex sits at a lattice corner (fewest reachable
    sites) in any layer ≤ T − j; ∞ when j exceeds the graph's depth.
    Lemma 8 lower-bounds this by ``j^d / d!``.
    """
    j = check_nonnegative(j, "j", integer=True)
    if j > graph.generations:
        return math.inf
    return graph.lattice.min_reachable_within(j)


def max_line_vertices_per_subset(
    graph: ComputationGraph, partition: KPartition
) -> int:
    """The realized line-time of an explicit partition.

    max over subsets V_i and lines ℓ of |V_i ∩ ℓ| — since lines are
    per-site columns, this is the largest same-site multiplicity inside
    any one subset.  Theorem 4 guarantees this is < 2(d!·2S)^{1/d} for
    every 2S-partition of C_d; tests check that on partitions induced
    by real pebblings.
    """
    best = 0
    for subset in partition.subsets:
        counts: dict[int, int] = {}
        for v in subset:
            s = graph.site_index_of(v)
            counts[s] = counts.get(s, 0) + 1
        if counts:
            best = max(best, max(counts.values()))
    return best
