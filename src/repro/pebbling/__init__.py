"""Pebble games and I/O lower bounds — paper section 7.

The paper models the memory traffic of a lattice computation with a
*parallel-red-blue pebble game* played on the layered computation graph
``C_d`` of a d-dimensional LGCA, and derives the throughput ceiling
``R = O(B · S^{1/d})``.  This subpackage implements every piece of that
chain:

* :mod:`repro.pebbling.graph` — the computation graph C_d (one layer
  per generation, arcs along the lattice neighborhoods).
* :mod:`repro.pebbling.game` — the sequential red-blue pebble game of
  Hong & Kung [5]: rules 1–4, legality checking, I/O counting.
* :mod:`repro.pebbling.parallel_game` — the paper's extension: cyclic
  write/calculate/read phases with place-holder (pink) pebbles.
* :mod:`repro.pebbling.division` — S-I/O-divisions of a pebbling and
  the induced 2S-partition of Theorem 2.
* :mod:`repro.pebbling.partition` — K-partition validation (dominator
  sets, minimum sets, acyclic dependency).
* :mod:`repro.pebbling.lines` — lines, line covers, line-time, and
  line-spread (Lemmas 3–8 machinery).
* :mod:`repro.pebbling.schedules` — constructive pebbling strategies
  (per-site, row-cache, trapezoid tiling) whose measured I/O brackets
  the lower bound from above.
* :mod:`repro.pebbling.bounds` — Lemma 8, Theorem 4, and the Q / R
  bounds with explicit constants.
"""

from repro.pebbling.graph import ComputationGraph
from repro.pebbling.game import (
    RedBluePebbleGame,
    Move,
    IllegalMoveError,
    replay,
)
from repro.pebbling.parallel_game import (
    ParallelRedBluePebbleGame,
    PhaseStep,
)
from repro.pebbling.division import (
    io_division,
    induced_partition,
    division_size,
)
from repro.pebbling.partition import (
    KPartition,
    PartitionError,
    verify_dominator,
    verify_partition,
)
from repro.pebbling.lines import (
    complete_line_set,
    line_of_vertex,
    lines_covered_by_ball,
    line_spread,
    max_line_vertices_per_subset,
)
from repro.pebbling.schedules import (
    per_site_schedule,
    row_cache_schedule,
    trapezoid_schedule,
    lru_cache_schedule,
    measure_schedule,
    ScheduleReport,
)
from repro.pebbling.phased import (
    layer_parallel_steps,
    measure_phased,
    PhasedReport,
)
from repro.pebbling.optimal import (
    OptimalPebbling,
    minimum_io,
    optimal_pebbling,
)
from repro.pebbling.bounds import (
    lemma8_lower_bound,
    theorem4_line_time_bound,
    partition_size_lower_bound,
    io_moves_lower_bound,
    io_per_update_lower_bound,
)

__all__ = [
    "ComputationGraph",
    "RedBluePebbleGame",
    "Move",
    "IllegalMoveError",
    "replay",
    "ParallelRedBluePebbleGame",
    "PhaseStep",
    "io_division",
    "induced_partition",
    "division_size",
    "KPartition",
    "PartitionError",
    "verify_dominator",
    "verify_partition",
    "complete_line_set",
    "line_of_vertex",
    "lines_covered_by_ball",
    "line_spread",
    "max_line_vertices_per_subset",
    "per_site_schedule",
    "row_cache_schedule",
    "trapezoid_schedule",
    "lru_cache_schedule",
    "measure_schedule",
    "ScheduleReport",
    "layer_parallel_steps",
    "measure_phased",
    "PhasedReport",
    "OptimalPebbling",
    "minimum_io",
    "optimal_pebbling",
    "lemma8_lower_bound",
    "theorem4_line_time_bound",
    "partition_size_lower_bound",
    "io_moves_lower_bound",
    "io_per_update_lower_bound",
]
