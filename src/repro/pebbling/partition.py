"""K-partitions of a DAG (the paper's definition before Theorem 2).

A K-partition V of a DAG is a partition of its vertices such that

1. every subset V_i has a *dominator set* D_i (≤ K vertices hitting
   every input-to-V_i path) and a *minimum set* M_i (≤ K vertices: the
   members of V_i with no children inside V_i);
2. the subsets have no cyclic dependencies.

This module *verifies* those properties for explicitly given partitions
(the ones :func:`repro.pebbling.division.induced_partition` constructs
from real pebblings), which is how Theorem 2's construction is checked
end to end rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.pebbling.graph import ComputationGraph

__all__ = ["KPartition", "PartitionError", "verify_dominator", "verify_partition"]


class PartitionError(ValueError):
    """A claimed K-partition violates one of its defining properties."""


@dataclass(frozen=True)
class KPartition:
    """An explicit partition with per-subset dominator and minimum sets.

    Attributes
    ----------
    subsets:
        The V_i, as tuples of vertex ids (disjoint, covering the
        non-input vertices the pebbling computed).
    dominators:
        The D_i (each ≤ K for a valid K-partition).
    minimums:
        The M_i.
    """

    subsets: tuple[tuple[int, ...], ...]
    dominators: tuple[tuple[int, ...], ...]
    minimums: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not (len(self.subsets) == len(self.dominators) == len(self.minimums)):
            raise PartitionError(
                "subsets, dominators, and minimums must align one-to-one"
            )

    @property
    def size(self) -> int:
        """g = |V| — the quantity Lemma 2 lower-bounds."""
        return len(self.subsets)

    def max_dominator_size(self) -> int:
        """Largest dominator-set size over the partition."""
        return max((len(d) for d in self.dominators), default=0)

    def max_minimum_size(self) -> int:
        """Largest minimum-set size over the partition."""
        return max((len(m) for m in self.minimums), default=0)

    def is_k_partition(self, k: int) -> bool:
        """Size test only — structural checks live in :func:`verify_partition`."""
        return self.max_dominator_size() <= k and self.max_minimum_size() <= k


def verify_dominator(
    graph: ComputationGraph, subset: Sequence[int], dominator: Sequence[int]
) -> None:
    """Check that every input→subset path meets the dominator.

    Equivalent formulation (used here): deleting the dominator from the
    graph must leave no member of ``subset`` derivable from the inputs —
    a vertex is *derivable* if it is an input, or in the dominator
    (blocked), or ... concretely we do a forward sweep marking vertices
    reachable from the inputs along arcs avoiding dominator vertices,
    and fail if a subset vertex is marked.

    A subset vertex with an undominated predecessor chain to an input
    witnesses a path missing D_i.
    """
    dom = {int(v) for v in dominator}
    target = {int(v) for v in subset}
    # Layered forward reachability (the graph is layered, so one pass in
    # vertex order is a topological sweep).
    reachable = np.zeros(graph.num_vertices, dtype=bool)
    for v in graph.inputs():
        if int(v) not in dom:
            reachable[int(v)] = True
    for v in range(graph.num_sites, graph.num_vertices):
        if v in dom:
            continue
        preds = graph.predecessors(v)
        if np.any(reachable[preds]):
            reachable[v] = True
    bad = [v for v in target if reachable[v]]
    if bad:
        raise PartitionError(
            f"dominator misses a path from the inputs to vertices {bad[:5]}"
        )


def _verify_minimum(
    graph: ComputationGraph, subset: Sequence[int], minimum: Sequence[int]
) -> None:
    """M_i must contain every member of V_i with no children in V_i."""
    sub = {int(v) for v in subset}
    mini = {int(v) for v in minimum}
    for v in sub:
        has_child_inside = any(int(s) in sub for s in graph.successors(v))
        if not has_child_inside and v not in mini:
            raise PartitionError(
                f"vertex {v} has no children in its subset but is missing "
                "from the minimum set"
            )
    extra = mini - sub
    if extra:
        raise PartitionError(
            f"minimum set contains vertices outside the subset: {sorted(extra)[:5]}"
        )


def _verify_acyclic(graph: ComputationGraph, subsets: Sequence[Sequence[int]]) -> None:
    """Property 2: the subset dependency relation must be acyclic."""
    owner: dict[int, int] = {}
    for i, sub in enumerate(subsets):
        for v in sub:
            owner[int(v)] = i
    n = len(subsets)
    edges: set[tuple[int, int]] = set()
    for v, i in owner.items():
        for u in graph.predecessors(v):
            j = owner.get(int(u))
            if j is not None and j != i:
                edges.add((j, i))
    # Kahn's algorithm on the subset digraph.
    indeg = [0] * n
    adj: list[list[int]] = [[] for _ in range(n)]
    for j, i in edges:
        adj[j].append(i)
        indeg[i] += 1
    queue = [i for i in range(n) if indeg[i] == 0]
    seen = 0
    while queue:
        j = queue.pop()
        seen += 1
        for i in adj[j]:
            indeg[i] -= 1
            if indeg[i] == 0:
                queue.append(i)
    if seen != n:
        raise PartitionError("subset dependencies contain a cycle")


def verify_partition(
    graph: ComputationGraph,
    partition: KPartition,
    k: int,
    *,
    universe: Sequence[int] | None = None,
) -> None:
    """Full validation of a claimed K-partition.

    Parameters
    ----------
    universe:
        The vertex set the subsets must exactly cover (default: all
        non-input vertices).

    Raises
    ------
    PartitionError
        On any violated property, naming it.
    """
    if universe is None:
        universe_set = set(range(graph.num_sites, graph.num_vertices))
    else:
        universe_set = {int(v) for v in universe}
    seen: set[int] = set()
    for sub in partition.subsets:
        for v in sub:
            if v in seen:
                raise PartitionError(f"vertex {v} appears in two subsets")
            seen.add(v)
    if seen != universe_set:
        missing = universe_set - seen
        extra = seen - universe_set
        raise PartitionError(
            f"partition covers wrong vertex set: missing {len(missing)}, "
            f"extra {len(extra)}"
        )
    if not partition.is_k_partition(k):
        raise PartitionError(
            f"dominator/minimum sets exceed K={k}: "
            f"max |D|={partition.max_dominator_size()}, "
            f"max |M|={partition.max_minimum_size()}"
        )
    for sub, dom, mini in zip(
        partition.subsets, partition.dominators, partition.minimums
    ):
        verify_dominator(graph, sub, dom)
        _verify_minimum(graph, sub, mini)
    _verify_acyclic(graph, partition.subsets)
