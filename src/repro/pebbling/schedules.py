"""Constructive pebbling strategies for LGCA computation graphs.

Three schedules bracket the design space the paper's bound constrains.
All of them emit plain :class:`repro.pebbling.game.Move` sequences that
the sequential game replays *with legality checking*, so a schedule that
overruns its red-pebble budget or reads a value that is not in main
memory fails loudly.

* :func:`per_site_schedule` — the strawman: every site update reads its
  whole neighborhood from main memory and writes its result back.
  I/O per update ≈ 2d + 2, independent of S (no reuse at all).
* :func:`row_cache_schedule` — what the paper's serial pipeline engines
  do: raster-stream each generation through a 2-lattice-line window,
  optionally ``depth`` generations per pass (the k-stage pipeline).
  I/O per update = 2/depth, with S ≈ depth · (2·L^{d−1} + O(1)).
* :func:`trapezoid_schedule` — blocked space-time tiling: read a
  ``(b+2h)^d`` halo, advance h generations inside shrinking regions,
  write back the ``b^d`` core.  I/O per update = Θ(1/h) at
  S = Θ((b+2h)^d), i.e. Θ(S^{-1/d}) — matching the lower bound's
  scaling, the constructive half of experiment E10.

:func:`measure_schedule` replays a schedule and reports I/O, compute,
recompute overhead, and the peak red-pebble population.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.pebbling.game import Move, MoveKind, RedBluePebbleGame
from repro.pebbling.graph import ComputationGraph
from repro.util.validation import check_positive

__all__ = [
    "per_site_schedule",
    "row_cache_schedule",
    "trapezoid_schedule",
    "lru_cache_schedule",
    "measure_schedule",
    "ScheduleReport",
]


@dataclass(frozen=True)
class ScheduleReport:
    """Measured cost of a replayed schedule.

    Attributes
    ----------
    name:
        Schedule identifier.
    io_moves:
        q — total reads + writes.
    compute_moves:
        Rule-4 applications, *including* recomputation.
    unique_computed:
        Distinct vertices computed (= |X| − inputs for a complete run).
    max_red:
        Peak red-pebble population — the S the schedule actually needs.
    io_per_update:
        q / unique_computed, the quantity the lower bound floors.
    recompute_factor:
        compute_moves / unique_computed (1.0 = no redundant work).
    """

    name: str
    io_moves: int
    compute_moves: int
    unique_computed: int
    max_red: int
    io_per_update: float
    recompute_factor: float


def measure_schedule(
    graph: ComputationGraph,
    moves: Sequence[Move],
    storage: int,
    name: str = "schedule",
) -> ScheduleReport:
    """Replay with legality checking and report costs.

    Raises :class:`repro.pebbling.game.IllegalMoveError` if the schedule
    is not a valid complete computation within ``storage`` red pebbles,
    and :class:`ValueError` if it does not reach the goal.
    """
    game = RedBluePebbleGame(graph, storage)
    max_red = 0
    for move in moves:
        game.apply(move)
        if game.red_count > max_red:
            max_red = game.red_count
    if not game.goal_reached():
        raise ValueError(f"schedule {name!r} did not blue-pebble all outputs")
    unique = len(game.computed)
    return ScheduleReport(
        name=name,
        io_moves=game.io_moves,
        compute_moves=game.compute_moves,
        unique_computed=unique,
        max_red=max_red,
        io_per_update=game.io_moves / unique if unique else 0.0,
        recompute_factor=game.compute_moves / unique if unique else 0.0,
    )


# -- strawman -------------------------------------------------------------------


def per_site_schedule(graph: ComputationGraph) -> list[Move]:
    """No-reuse schedule: read neighborhood, compute, write, evict.

    Needs only ``2d + 3`` red pebbles regardless of problem size — and
    pays ≈ ``2d + 2`` I/O moves per site update for it.
    """
    moves: list[Move] = []
    for t in range(1, graph.num_layers):
        for v in graph.layer(t):
            v = int(v)
            preds = [int(u) for u in graph.predecessors(v)]
            for u in preds:
                moves.append(Move(MoveKind.READ, u))
            moves.append(Move(MoveKind.COMPUTE, v))
            moves.append(Move(MoveKind.WRITE, v))
            for u in preds:
                moves.append(Move(MoveKind.REMOVE_RED, u))
            moves.append(Move(MoveKind.REMOVE_RED, v))
    return moves


def per_site_storage_needed(graph: ComputationGraph) -> int:
    """Red pebbles :func:`per_site_schedule` needs: max in-degree + 1."""
    return 2 * graph.d + 2


# -- raster window (the pipeline engines' schedule) --------------------------------


def row_cache_schedule(graph: ComputationGraph, depth: int = 1) -> list[Move]:
    """Raster-stream schedule with a ``depth``-generation window stack.

    One pass streams a generation through ``depth`` chained windows
    (exactly the k-stage serial pipeline of section 3): layer t is read
    once, layers t+1 … t+depth−1 live entirely in red pebbles, layer
    t+depth is written once.  I/O per update is therefore ``2/depth``.
    """
    depth = check_positive(depth, "depth", integer=True)
    if depth > graph.generations:
        raise ValueError(
            f"depth={depth} exceeds the graph's {graph.generations} generations"
        )
    n = graph.num_sites
    shape = graph.lattice.shape
    reach = int(np.prod(shape[1:])) if len(shape) > 1 else 1
    moves: list[Move] = []
    t0 = 0
    while t0 < graph.generations:
        span = min(depth, graph.generations - t0)
        evicted: set[int] = set()
        for p in range(n + span * reach):
            # Evictions due this tick (free capacity before new pebbles).
            s0 = p - 2 * reach - 1
            if 0 <= s0 < n:
                v = t0 * n + s0
                if v not in evicted:
                    moves.append(Move(MoveKind.REMOVE_RED, v))
                    evicted.add(v)
            for j in range(1, span):
                s = p - (j + 2) * reach - 1
                if 0 <= s < n:
                    v = (t0 + j) * n + s
                    if v not in evicted:
                        moves.append(Move(MoveKind.REMOVE_RED, v))
                        evicted.add(v)
            # Stream one layer-t0 value in.
            if p < n:
                moves.append(Move(MoveKind.READ, t0 * n + p))
            # Each window stage computes one site per tick.
            for j in range(1, span + 1):
                s = p - j * reach
                if 0 <= s < n:
                    v = (t0 + j) * n + s
                    moves.append(Move(MoveKind.COMPUTE, v))
                    if j == span:
                        moves.append(Move(MoveKind.WRITE, v))
                        moves.append(Move(MoveKind.REMOVE_RED, v))
                        evicted.add(v)
        # Drain any window residue before the next pass.
        for j in range(0, span):
            layer = t0 + j
            lo = n + span * reach - (j + 2) * reach - 1
            for s in range(max(0, lo), n):
                v = layer * n + s
                if v not in evicted:
                    moves.append(Move(MoveKind.REMOVE_RED, v))
                    evicted.add(v)
        t0 += span
    return moves


def row_cache_storage_needed(graph: ComputationGraph, depth: int = 1) -> int:
    """Generous red-pebble budget for :func:`row_cache_schedule`.

    Each of the ``depth`` windows holds at most ``2·reach + 2`` live
    values; the exact peak is reported by :func:`measure_schedule`.
    """
    shape = graph.lattice.shape
    reach = int(np.prod(shape[1:])) if len(shape) > 1 else 1
    return depth * (2 * reach + 2) + 2


# -- LRU cache (the general-purpose-machine schedule) -----------------------------------


def lru_cache_schedule(graph: ComputationGraph, storage: int) -> list[Move]:
    """What a cache of S site values does: demand reads, LRU eviction,
    write-back of dirty values.

    This models the paper's *general-purpose host* alternative: the
    program sweeps each generation in row-major order with no blocking,
    and the cache does what caches do.  With S above the working set
    (two lattice lines) it matches the pipeline's 2 I/O per update; once
    S falls below it, it thrashes toward per-site behaviour — the
    capacity cliff the engines' purpose-built delay lines are shaped to
    sit exactly on top of.

    Values evicted before ever being written are written back first
    (they may be needed by the next layer); values never needed again
    are still written if dirty (a real cache cannot know the future).
    """
    storage = check_positive(storage, "storage", integer=True)
    min_needed = 2 * graph.d + 2
    if storage < min_needed:
        raise ValueError(
            f"storage={storage} below the stencil working set {min_needed}"
        )
    moves: list[Move] = []
    # cache state: vertex -> dirty?   (insertion order = LRU order)
    cache: dict[int, bool] = {}

    def touch(v: int) -> None:
        cache[v] = cache.pop(v)

    def evict_one() -> None:
        victim, dirty = next(iter(cache.items()))
        if dirty:
            moves.append(Move(MoveKind.WRITE, victim))
        del cache[victim]
        moves.append(Move(MoveKind.REMOVE_RED, victim))

    def ensure_room() -> None:
        while len(cache) >= storage:
            evict_one()

    def demand_read(v: int) -> None:
        if v in cache:
            touch(v)
            return
        ensure_room()
        moves.append(Move(MoveKind.READ, v))
        cache[v] = False  # clean: blue copy exists

    for t in range(1, graph.num_layers):
        for v in graph.layer(t):
            v = int(v)
            preds = [int(u) for u in graph.predecessors(v)]
            for u in preds:
                demand_read(u)
            # re-touch preds so the eviction for v's slot spares them
            for u in preds:
                touch(u)
            ensure_room()
            moves.append(Move(MoveKind.COMPUTE, v))
            cache[v] = True  # dirty: not yet in main memory
    # Final flush: outputs must reach main memory (and dirty interiors
    # are written too — the cache cannot know they are dead).
    for v, dirty in list(cache.items()):
        if dirty:
            moves.append(Move(MoveKind.WRITE, v))
        moves.append(Move(MoveKind.REMOVE_RED, v))
        del cache[v]
    return moves


# -- trapezoid (space-time) tiling ----------------------------------------------------


def _box_flat_indices(shape: Sequence[int], lo: Sequence[int], hi: Sequence[int]) -> list[int]:
    """Flat row-major indices of the clipped box [lo, hi) in a lattice."""
    ranges = [range(max(0, l), min(s, h)) for l, h, s in zip(lo, hi, shape)]
    out = []
    for coords in itertools.product(*ranges):
        idx = 0
        for x, s in zip(coords, shape):
            idx = idx * s + x
        out.append(idx)
    return out


def trapezoid_schedule(
    graph: ComputationGraph, base: int, height: int
) -> list[Move]:
    """Blocked space-time tiling with halo re-reads (no recomputation of
    *written* values, but overlapping halos recompute interior edges).

    The lattice is covered by disjoint ``base^d`` core blocks.  For each
    height-``height`` time chunk and each core block:

    1. read the layer-t0 values of the core grown by ``height`` (the
       halo), clipped to the lattice;
    2. compute forward: layer t0+j over the core grown by
       ``height − j`` — every predecessor lies in the previous grown
       region, already red;
    3. write the core's layer-(t0+height) values (core blocks tile the
       lattice, so the full layer lands in main memory);
    4. evict everything.

    Red-pebble peak ≈ 2·(base + 2·height)^d; I/O per update ≈
    ``((b+2h)^d + b^d) / (h·b^d)`` = Θ(1/h) = Θ(S^{-1/d}) at h ≈ b.
    """
    base = check_positive(base, "base", integer=True)
    height = check_positive(height, "height", integer=True)
    if height > graph.generations:
        raise ValueError(
            f"height={height} exceeds the graph's {graph.generations} generations"
        )
    shape = graph.lattice.shape
    n = graph.num_sites
    moves: list[Move] = []
    core_origins = list(
        itertools.product(*(range(0, s, base) for s in shape))
    )
    t0 = 0
    while t0 < graph.generations:
        h = min(height, graph.generations - t0)
        for origin in core_origins:
            lo = np.array(origin)
            hi = np.minimum(lo + base, shape)
            # 1. halo read at layer t0
            grown_lo = lo - h
            grown_hi = hi + h
            region_prev = _box_flat_indices(shape, grown_lo, grown_hi)
            for s in region_prev:
                moves.append(Move(MoveKind.READ, t0 * n + s))
            # 2. advance through shrinking regions
            for j in range(1, h + 1):
                g = h - j
                region = _box_flat_indices(shape, lo - g, hi + g)
                for s in region:
                    moves.append(Move(MoveKind.COMPUTE, (t0 + j) * n + s))
                for s in region_prev:
                    moves.append(Move(MoveKind.REMOVE_RED, (t0 + j - 1) * n + s))
                region_prev = region
            # 3. write the core of the top layer
            core = _box_flat_indices(shape, lo, hi)
            top = t0 + h
            for s in core:
                moves.append(Move(MoveKind.WRITE, top * n + s))
            # 4. evict the top region
            for s in region_prev:
                moves.append(Move(MoveKind.REMOVE_RED, top * n + s))
        t0 += h
    return moves


def trapezoid_storage_needed(graph: ComputationGraph, base: int, height: int) -> int:
    """Generous red-pebble budget: two consecutive grown layers."""
    grown = 1
    for s in graph.lattice.shape:
        grown *= min(s, base + 2 * height)
    return 2 * grown + 2
