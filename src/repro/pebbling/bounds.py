"""Lemma 8, Theorem 4, and the resulting I/O lower bounds.

The proof chain, with every quantity computable here:

* Lemma 8: the line-spread of C_d satisfies ``T_d(j) > j^d / d!``
  (:func:`lemma8_lower_bound` gives the right-hand side; the exact
  left-hand side is :func:`repro.pebbling.lines.line_spread`).
* Theorem 4: every 2S-partition of C_d has line-time
  ``τ(2S) < 2 (d! · 2S)^{1/d}`` (:func:`theorem4_line_time_bound`).
* Lemma 2: a 2S-partition has at least ``|X*| / (2S · τ(2S))`` subsets
  (:func:`partition_size_lower_bound` — for C_d every vertex lies on a
  line, so |X*| = |X|).
* Lemma 1: ``Q > S · (g − 1)`` (:func:`io_moves_lower_bound`).

Dividing by the number of site updates gives the per-update I/O floor
(:func:`io_per_update_lower_bound`) that the schedule benchmarks plot
against measured schedules, and that scales as ``Ω(S^{-1/d})`` — the
graph-side face of ``R = O(B·S^{1/d})``.
"""

from __future__ import annotations

import math

from repro.pebbling.graph import ComputationGraph
from repro.util.validation import check_nonnegative, check_positive

__all__ = [
    "lemma8_lower_bound",
    "theorem4_line_time_bound",
    "partition_size_lower_bound",
    "io_moves_lower_bound",
    "io_per_update_lower_bound",
]


def lemma8_lower_bound(dimension: int, j: int) -> float:
    """Lemma 8's right-hand side: j^d / d! (< the true line-spread)."""
    dimension = check_positive(dimension, "dimension", integer=True)
    j = check_nonnegative(j, "j", integer=True)
    return (j**dimension) / math.factorial(dimension)


def theorem4_line_time_bound(dimension: int, storage: int) -> float:
    """Theorem 4: τ(2S) < 2 (d! · 2S)^{1/d} for any 2S-partition of C_d.

    ``storage`` is S (the bound is stated for 2S-partitions, so the 2S
    appears inside).
    """
    dimension = check_positive(dimension, "dimension", integer=True)
    storage = check_positive(storage, "storage", integer=True)
    return 2.0 * (math.factorial(dimension) * 2.0 * storage) ** (1.0 / dimension)


def partition_size_lower_bound(graph: ComputationGraph, storage: int) -> float:
    """Lemma 2: g ≥ |X| / (2S · τ(2S)), with Theorem 4's τ bound.

    For C_d every vertex lies on a line, so |X*| = |X| = (T+1)·n.
    """
    storage = check_positive(storage, "storage", integer=True)
    tau = theorem4_line_time_bound(graph.d, storage)
    return graph.num_vertices / (2.0 * storage * tau)


def io_moves_lower_bound(graph: ComputationGraph, storage: int) -> float:
    """Lemma 1: Q > S (g − 1), for any pebbling with ≤ S red pebbles.

    Returns 0 when the whole graph fits in storage (the paper's
    assumption 3, S < r^d, excludes that regime from the bound).
    """
    g = partition_size_lower_bound(graph, storage)
    return max(0.0, storage * (g - 1.0))


def io_per_update_lower_bound(graph: ComputationGraph, storage: int) -> float:
    """Q lower bound divided by the number of site updates.

    The asymptotic form is ``1 / (2 τ(2S)) ≈ Ω(S^{-1/d})``; this
    function keeps the exact finite-size correction.
    """
    q = io_moves_lower_bound(graph, storage)
    return q / graph.num_non_input_vertices
