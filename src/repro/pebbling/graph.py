"""The LGCA computation graph C_d (paper section 7).

``C = (X, A)`` with ``X = {(x, t) | x ∈ V, 0 <= t <= T}`` and an arc
from ``(u, t−1)`` to ``(v, t)`` iff ``u ∈ N(v)`` — a layered DAG of
``T + 1`` copies of the lattice's vertex set.  Layer 0 vertices are the
inputs, layer T vertices the outputs.

Vertices are encoded as flat integers ``t · n + site_index`` (n = number
of lattice sites) so pebble games can use plain integer sets and NumPy
arrays.  Arc structure is generated lazily per vertex from the lattice's
neighborhood function; dense adjacency is never materialized, which
keeps multi-million-vertex graphs cheap as long as the game only touches
what it pebbles.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Sequence

import numpy as np

from repro.lattice.geometry import OrthogonalLattice
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["ComputationGraph"]


@dataclass(frozen=True)
class ComputationGraph:
    """The layered computation graph of a d-dimensional LGCA.

    Parameters
    ----------
    lattice:
        The spatial graph G.  Any object with the lattice-graph
        interface works: :class:`repro.lattice.geometry.OrthogonalLattice`
        (the paper's worst case) or
        :class:`repro.lattice.geometry.HexagonalLattice` (the FHP
        lattice — more connected, so every bound proved on the
        orthogonal grid holds a fortiori; checked in tests).
    generations:
        T — number of evolution steps; the graph has T + 1 layers.
    """

    lattice: OrthogonalLattice
    generations: int

    def __post_init__(self) -> None:
        check_positive(self.generations, "generations", integer=True)

    # -- sizes ------------------------------------------------------------------

    @property
    def d(self) -> int:
        """Lattice dimension."""
        return self.lattice.d

    @property
    def num_sites(self) -> int:
        """Sites per layer (one layer = one generation)."""
        return self.lattice.num_sites

    @property
    def num_layers(self) -> int:
        """T + 1 layers, counting the layer-0 inputs."""
        return self.generations + 1

    @property
    def num_vertices(self) -> int:
        """|X| = (T + 1) · sites."""
        return self.num_layers * self.num_sites

    @property
    def num_non_input_vertices(self) -> int:
        """|X| minus the layer-0 inputs — the site updates performed."""
        return self.generations * self.num_sites

    # -- encoding -----------------------------------------------------------------

    def vertex(self, site: Sequence[int], t: int) -> int:
        """Flat id of lattice point ``site`` at layer ``t``."""
        t = check_nonnegative(t, "t", integer=True)
        if t >= self.num_layers:
            raise ValueError(f"t={t} exceeds last layer {self.generations}")
        return t * self.num_sites + self.lattice.index(site)

    def layer_of(self, v: int) -> int:
        """Layer (time) of a flat vertex id."""
        self._check_vertex(v)
        return v // self.num_sites

    def site_of(self, v: int) -> tuple[int, ...]:
        """Lattice coordinates of a flat vertex id."""
        self._check_vertex(v)
        return self.lattice.site(v % self.num_sites)

    def site_index_of(self, v: int) -> int:
        """Within-layer site index of a flat vertex id."""
        self._check_vertex(v)
        return v % self.num_sites

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise ValueError(
                f"vertex {v} out of range [0, {self.num_vertices})"
            )

    # -- structure --------------------------------------------------------------------

    @cached_property
    def _neighborhood_indices(self) -> list[np.ndarray]:
        """Per site: flat indices of N(site) = site ∪ neighbors (layer-local)."""
        out = []
        for site in self.lattice.sites():
            nbhd = self.lattice.neighborhood(site)
            out.append(
                np.array(sorted(self.lattice.index(p) for p in nbhd), dtype=np.int64)
            )
        return out

    def predecessors(self, v: int) -> np.ndarray:
        """Flat ids of the vertices (N(x), t−1) that (x, t) depends on."""
        self._check_vertex(v)
        t, s = divmod(v, self.num_sites)
        if t == 0:
            return np.empty(0, dtype=np.int64)
        return (t - 1) * self.num_sites + self._neighborhood_indices[s]

    def successors(self, v: int) -> np.ndarray:
        """Flat ids of the layer-(t+1) vertices depending on (x, t).

        The lattice is undirected, so u ∈ N(v) iff v ∈ N(u): successors
        use the same neighborhood index set one layer up.
        """
        self._check_vertex(v)
        t, s = divmod(v, self.num_sites)
        if t == self.generations:
            return np.empty(0, dtype=np.int64)
        return (t + 1) * self.num_sites + self._neighborhood_indices[s]

    def in_degree(self, v: int) -> int:
        """Number of immediate predecessors of ``v``."""
        return int(self.predecessors(v).size)

    def inputs(self) -> np.ndarray:
        """Layer-0 vertices (no predecessors)."""
        return np.arange(self.num_sites, dtype=np.int64)

    def outputs(self) -> np.ndarray:
        """Layer-T vertices (no successors)."""
        return np.arange(
            self.generations * self.num_sites, self.num_vertices, dtype=np.int64
        )

    def layer(self, t: int) -> np.ndarray:
        """All vertices of layer ``t``."""
        t = check_nonnegative(t, "t", integer=True)
        if t >= self.num_layers:
            raise ValueError(f"t={t} exceeds last layer {self.generations}")
        return np.arange(
            t * self.num_sites, (t + 1) * self.num_sites, dtype=np.int64
        )

    def vertices(self) -> Iterator[int]:
        """Iterate over all flat vertex ids, layer by layer."""
        return iter(range(self.num_vertices))

    # -- distances (Lemmas 3 & 4 machinery) ------------------------------------------

    def distance(self, u: int, v: int) -> int | None:
        """Graph distance from u to v along arcs, or None if unreachable.

        By Lemma 3 every (u, v)-path has length layer(v) − layer(u); a
        path exists iff that layer gap is ≥ the lattice distance of the
        endpoints' sites (Lemma 7).
        """
        self._check_vertex(u)
        self._check_vertex(v)
        dt = self.layer_of(v) - self.layer_of(u)
        if dt < 0:
            return None
        lattice_dist = self.lattice.distance(self.site_of(u), self.site_of(v))
        return dt if lattice_dist <= dt else None

    def reachable_in(self, u: int, steps: int) -> np.ndarray:
        """Vertices reachable from u in exactly ``steps`` arcs.

        These lie in layer ``layer(u) + steps`` at lattice distance
        ≤ steps (Lemma 7's converse, valid while the layer exists).
        """
        steps = check_nonnegative(steps, "steps", integer=True)
        t = self.layer_of(u) + steps
        if t > self.generations:
            return np.empty(0, dtype=np.int64)
        origin = self.site_of(u)
        hits = [
            self.lattice.index(site)
            for site in self.lattice.sites()
            if self.lattice.distance(origin, site) <= steps
        ]
        return t * self.num_sites + np.array(sorted(hits), dtype=np.int64)

    # -- export ---------------------------------------------------------------------------

    def to_networkx(self) -> "nx.DiGraph":
        """Materialize as a networkx.DiGraph (tests / small graphs only)."""
        import networkx as nx

        if self.num_vertices > 200_000:
            raise ValueError(
                f"refusing to materialize {self.num_vertices} vertices; "
                "use the implicit interface"
            )
        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_vertices))
        for v in range(self.num_sites, self.num_vertices):
            for u in self.predecessors(v):
                g.add_edge(int(u), int(v))
        return g
