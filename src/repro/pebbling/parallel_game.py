"""The parallel-red-blue pebble game (the paper's section 7 extension).

The paper extends Hong & Kung's sequential game to model a CRCW-PRAM-
style machine with bounded memory bandwidth: the game proceeds in cyclic
**phases** —

* **write phase** — only rule 3 moves (red → blue, main-memory writes);
* **calculate phase** — parallel rule 4 moves, with *pink* place-holder
  pebbles allowing a value to fan out to many simultaneous calculations
  even when its red pebble slides to a dependent ("(a) pink pebble
  placed by rule 4, (b) a red pebble replaces a pink pebble, (c) no pink
  pebbles remain at the end of the phase");
* **read phase** — only rule 2 moves (blue → red, main-memory reads).

The ordering requirements the paper derives are enforced literally:

* a write in step *i* uses a red pebble placed in a previous step;
* a datum read in step *i* cannot also be computed in step *i*;
* every calculation's supports must be red at the start of the phase
  (pinks make the fan-out legal without intermediate re-reads);
* the red population never exceeds S at a phase boundary, and parallel
  I/O width per phase is at most S ("parallel input/output of any size
  up to the processor's local memory capacity").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.pebbling.game import IllegalMoveError
from repro.pebbling.graph import ComputationGraph
from repro.util.validation import check_positive

__all__ = ["PhaseStep", "ParallelRedBluePebbleGame"]


@dataclass(frozen=True)
class PhaseStep:
    """One cyclic step C_i: writes, then calculations, then reads.

    Attributes
    ----------
    writes:
        Vertices blue-pebbled from red (rule 3).
    computes:
        Vertices red-pebbled in parallel (rule 4 via pink pebbles).
    reads:
        Vertices red-pebbled from blue (rule 2).
    evict_after_compute:
        Red pebbles released at the end of the calculate phase (rule 1;
        the slide of a red pebble onto a dependent is write+evict here).
    evict_before_read:
        Red pebbles released before the read phase (making room for the
        incoming data).
    """

    writes: tuple[int, ...] = ()
    computes: tuple[int, ...] = ()
    reads: tuple[int, ...] = ()
    evict_after_compute: tuple[int, ...] = ()
    evict_before_read: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for name in ("writes", "computes", "reads", "evict_after_compute", "evict_before_read"):
            vals = tuple(int(v) for v in getattr(self, name))
            if len(set(vals)) != len(vals):
                raise ValueError(f"{name} contains duplicate vertices")
            object.__setattr__(self, name, vals)

    @property
    def io_moves(self) -> int:
        """I/O moves this step contributes: writes + reads."""
        return len(self.writes) + len(self.reads)


class ParallelRedBluePebbleGame:
    """State machine for the phased game.

    Parameters
    ----------
    graph:
        The DAG (an LGCA computation graph).
    storage:
        S — red-pebble budget, which also caps per-phase I/O width.
    """

    def __init__(self, graph: ComputationGraph, storage: int):
        self.graph = graph
        self.storage = check_positive(storage, "storage", integer=True)
        self.red: set[int] = set()
        self.blue: set[int] = set(int(v) for v in graph.inputs())
        self.io_moves = 0
        self.compute_moves = 0
        self.steps_run = 0
        self.computed: set[int] = set()
        #: vertices red-pebbled during the current step (for the
        #: read-after-compute exclusion)
        self._fresh: set[int] = set()

    # -- queries ---------------------------------------------------------------

    @property
    def red_count(self) -> int:
        """Red pebbles currently on the board."""
        return len(self.red)

    def goal_reached(self) -> bool:
        """All outputs blue-pebbled (the complete-computation goal)."""
        return all(int(v) in self.blue for v in self.graph.outputs())

    # -- one step -----------------------------------------------------------------

    def run_step(self, step: PhaseStep) -> None:
        """Execute one write/calculate/read cycle, enforcing the rules."""
        self._fresh = set()
        self._write_phase(step.writes)
        self._calculate_phase(step.computes, step.evict_after_compute)
        self._read_phase(step.reads, step.evict_before_read)
        self.steps_run += 1

    def run(self, steps: Iterable[PhaseStep]) -> None:
        """Execute a sequence of phase steps, enforcing the rules."""
        for step in steps:
            self.run_step(step)

    # -- phases ----------------------------------------------------------------------

    def _write_phase(self, writes: Sequence[int]) -> None:
        if len(writes) > self.storage:
            raise IllegalMoveError(
                f"write phase of width {len(writes)} exceeds S={self.storage}"
            )
        for v in writes:
            if v not in self.red:
                raise IllegalMoveError(
                    f"write({v}): no red pebble (and writes precede this "
                    "step's calculations, so it cannot be fresh)"
                )
            if v in self.blue:
                raise IllegalMoveError(f"write({v}): already blue (wasted I/O)")
            self.blue.add(v)
            self.io_moves += 1

    def _calculate_phase(
        self, computes: Sequence[int], evictions: Sequence[int]
    ) -> None:
        # Pink pebbles: every calculation sees the *start-of-phase* red
        # set, so simultaneous fan-out from shared supports is legal.
        reds_at_start = self.red
        for v in computes:
            preds = self.graph.predecessors(int(v))
            if preds.size == 0:
                raise IllegalMoveError(f"compute({v}): vertex is an input")
            if v in reds_at_start:
                raise IllegalMoveError(f"compute({v}): already red")
            missing = [int(u) for u in preds if int(u) not in reds_at_start]
            if missing:
                raise IllegalMoveError(
                    f"compute({v}): supports {missing[:5]} not red at phase start"
                )
        # Rule 5c: pinks become red; evictions (rule 1) free registers.
        new_red = set(self.red)
        for v in evictions:
            if int(v) not in new_red:
                raise IllegalMoveError(f"evict({v}): not red")
            new_red.discard(int(v))
        for v in computes:
            new_red.add(int(v))
            self.computed.add(int(v))
            self._fresh.add(int(v))
        if len(new_red) > self.storage:
            raise IllegalMoveError(
                f"calculate phase ends with {len(new_red)} red pebbles > S={self.storage}"
            )
        self.red = new_red
        self.compute_moves += len(computes)

    def _read_phase(self, reads: Sequence[int], evictions: Sequence[int]) -> None:
        if len(reads) > self.storage:
            raise IllegalMoveError(
                f"read phase of width {len(reads)} exceeds S={self.storage}"
            )
        for v in evictions:
            v = int(v)
            if v not in self.red:
                raise IllegalMoveError(f"evict({v}): not red")
            self.red.discard(v)
        for v in reads:
            v = int(v)
            if v in self._fresh:
                raise IllegalMoveError(
                    f"read({v}): computed in this step — a register cannot "
                    "receive main-memory data while being calculated"
                )
            if v not in self.blue:
                raise IllegalMoveError(f"read({v}): no blue pebble")
            if v in self.red:
                raise IllegalMoveError(f"read({v}): already red (wasted I/O)")
            self.red.add(v)
            self.io_moves += 1
        if len(self.red) > self.storage:
            raise IllegalMoveError(
                f"read phase ends with {len(self.red)} red pebbles > S={self.storage}"
            )
