"""S-I/O-divisions and the induced 2S-partition (paper Theorem 2).

An **S-I/O-division** of a pebbling P is a split of its move sequence
into consecutive subsequences P_1 … P_h, each containing exactly S I/O
moves (the last may have fewer).  From any division the paper constructs
a partition of the vertex set:

* ``V_k`` — vertices first red-pebbled during P_k;
* ``D_k`` — vertices red at the end of P_{k−1}, plus vertices read
  (blue→red) during P_k: at most ``S + S = 2S``;
* ``M_k`` — the "last" vertices of V_k (no children inside V_k):
  at most 2S, because each ends P_k either still red or freshly blue.

:func:`induced_partition` performs that construction from a real move
history and returns a :class:`repro.pebbling.partition.KPartition` that
:func:`repro.pebbling.partition.verify_partition` can validate — making
Theorem 2 a *checked* construction in this code base rather than an
assumption.
"""

from __future__ import annotations

from typing import Sequence

from repro.pebbling.game import Move, MoveKind
from repro.pebbling.graph import ComputationGraph
from repro.pebbling.partition import KPartition
from repro.util.validation import check_positive

__all__ = ["io_division", "division_size", "induced_partition"]


def io_division(moves: Sequence[Move], storage: int) -> list[list[Move]]:
    """Split a move sequence into chunks of exactly S I/O moves each.

    The final chunk holds the remainder (0 < q_h ≤ S, or the whole
    sequence if it has ≤ S I/O moves total).  Trailing non-I/O moves
    attach to the last chunk.
    """
    storage = check_positive(storage, "storage", integer=True)
    chunks: list[list[Move]] = []
    current: list[Move] = []
    io_in_current = 0
    for move in moves:
        current.append(move)
        if move.is_io():
            io_in_current += 1
            if io_in_current == storage:
                chunks.append(current)
                current = []
                io_in_current = 0
    if current:
        chunks.append(current)
    elif not chunks:
        chunks.append([])
    return chunks


def division_size(moves: Sequence[Move], storage: int) -> int:
    """h — the number of subsequences in the S-I/O-division."""
    return len(io_division(moves, storage))


def induced_partition(
    graph: ComputationGraph, moves: Sequence[Move], storage: int
) -> KPartition:
    """The 2S-partition a pebbling induces (Theorem 2's construction).

    Replays the move history chunk by chunk, recording for every chunk
    the first-red vertices (V_k), the dominator candidates (red at chunk
    start plus reads during the chunk), and the minimum set (members of
    V_k without children in V_k).

    Empty chunks (possible when trailing moves do no first-time
    pebbling) are dropped — a partition has no empty subsets.
    """
    chunks = io_division(moves, storage)
    red: set[int] = set()
    ever_red: set[int] = set()
    subsets: list[tuple[int, ...]] = []
    dominators: list[tuple[int, ...]] = []
    minimums: list[tuple[int, ...]] = []
    for chunk in chunks:
        reds_at_start = set(red)
        first_red: list[int] = []
        reads_this_chunk: set[int] = set()
        for move in chunk:
            v = move.vertex
            if move.kind is MoveKind.READ:
                red.add(v)
                reads_this_chunk.add(v)
                if v not in ever_red:
                    ever_red.add(v)
                    first_red.append(v)
            elif move.kind is MoveKind.COMPUTE:
                red.add(v)
                if v not in ever_red:
                    ever_red.add(v)
                    first_red.append(v)
            elif move.kind is MoveKind.REMOVE_RED:
                red.discard(v)
            # writes and blue removals do not touch red state
        if not first_red:
            continue
        subset = set(first_red)
        minimum = tuple(
            v
            for v in first_red
            if not any(int(s) in subset for s in graph.successors(v))
        )
        dominator = tuple(sorted(reds_at_start | reads_this_chunk))
        subsets.append(tuple(sorted(subset)))
        dominators.append(dominator)
        minimums.append(minimum)
    return KPartition(
        subsets=tuple(subsets),
        dominators=tuple(dominators),
        minimums=tuple(minimums),
    )
