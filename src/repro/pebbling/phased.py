"""Native schedules for the parallel-red-blue game.

The whole point of the paper's game extension is to model a machine
with *parallel* compute and *parallel* I/O (width up to S per phase):
the same computation then takes ``O(|X|/S)`` steps instead of ``O(|X|)``
sequential moves, while the I/O count — the quantity the bounds
constrain — is untouched.  This module emits such schedules directly as
:class:`repro.pebbling.parallel_game.PhaseStep` sequences:

* :func:`layer_parallel_steps` — generation-parallel sweep: read layer
  t−1 in ≤S-wide bursts, compute all of layer t in single calculate
  phases (every support is red at phase start — the pink-pebble
  semantics), write it out, recycle the pebbles.

Replaying through :class:`ParallelRedBluePebbleGame` validates phase
legality; :func:`measure_phased` reports I/O, steps, and the realized
parallel speedup over the equivalent sequential pebbling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pebbling.graph import ComputationGraph
from repro.pebbling.parallel_game import ParallelRedBluePebbleGame, PhaseStep
from repro.util.validation import check_positive

__all__ = ["layer_parallel_steps", "measure_phased", "PhasedReport"]


@dataclass(frozen=True)
class PhasedReport:
    """Measured cost of a phased schedule.

    Attributes
    ----------
    io_moves:
        Total reads + writes (same currency as the sequential game).
    steps:
        Parallel time: write/calculate/read cycles executed.
    sequential_moves_equivalent:
        The move count a sequential replay of the same work needs
        (reads + writes + computes) — the parallel speedup baseline.
    """

    io_moves: int
    steps: int
    sequential_moves_equivalent: int

    @property
    def parallel_speedup(self) -> float:
        """Sequential moves per parallel step."""
        return (
            self.sequential_moves_equivalent / self.steps if self.steps else 0.0
        )


def layer_parallel_steps(
    graph: ComputationGraph, storage: int
) -> list[PhaseStep]:
    """Generation-parallel phased schedule.

    Needs only ``storage >= graph.num_sites``: the pink-pebble slide
    semantics let every register hand its support value over to the
    result computed in the same calculate phase, so two full layers are
    *never* simultaneously resident — exactly the fan-out/slide case the
    paper introduced the pink pebble for.  Every layer is written out
    once and layer 0 read once, so the I/O is ``(T + 1) · n`` — the same
    currency the sequential k=1 pipeline pays — but the *parallel time*
    is ``O(T + T·n/S)`` steps instead of ``O(T·n)`` sequential moves.
    """
    storage = check_positive(storage, "storage", integer=True)
    n = graph.num_sites
    if storage < n:
        raise ValueError(
            f"storage={storage} must hold one layer ({n} site values)"
        )
    steps: list[PhaseStep] = []
    io_width = storage  # parallel I/O width is capped at S by the game

    def batches(vertices: list[int]) -> list[tuple[int, ...]]:
        return [
            tuple(vertices[i : i + io_width])
            for i in range(0, len(vertices), io_width)
        ]

    # read layer 0
    prev_layer = [int(v) for v in graph.layer(0)]
    for batch in batches(prev_layer):
        steps.append(PhaseStep(reads=batch))
    for t in range(1, graph.num_layers):
        current = [int(v) for v in graph.layer(t)]
        # one parallel calculate phase (supports all red at phase start);
        # evict the supports in the same step — the pinks make this legal.
        steps.append(
            PhaseStep(computes=tuple(current), evict_after_compute=tuple(prev_layer))
        )
        # write the new layer out (next chunk — or the goal — needs it blue)
        for batch in batches(current):
            steps.append(PhaseStep(writes=batch))
        prev_layer = current
    # release the last layer's pebbles
    steps.append(PhaseStep(evict_before_read=tuple(prev_layer)))
    return steps


def measure_phased(
    graph: ComputationGraph, steps: list[PhaseStep], storage: int
) -> PhasedReport:
    """Replay through the phased game (validating) and report costs."""
    game = ParallelRedBluePebbleGame(graph, storage)
    game.run(steps)
    if not game.goal_reached():
        raise ValueError("phased schedule did not blue-pebble all outputs")
    sequential = game.io_moves + game.compute_moves
    return PhasedReport(
        io_moves=game.io_moves,
        steps=game.steps_run,
        sequential_moves_equivalent=sequential,
    )
