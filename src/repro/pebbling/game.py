"""The sequential red-blue pebble game (Hong & Kung [5], paper rules 1–4).

Rules, verbatim from the paper:

1. A pebble may be removed from a vertex at any time.
2. A red pebble may be placed on any vertex that has a blue pebble.
3. A blue pebble may be placed on any vertex that has a red pebble.
4. If all immediate predecessors of a vertex v are red-pebbled, v may
   be red-pebbled.

A blue pebble is a value in main memory, a red pebble a value in
processor storage (at most S red pebbles); rules 2 and 3 are I/O moves,
rule 4 a computation.  The goal is to blue-pebble the outputs starting
from blue-pebbled inputs.

:class:`RedBluePebbleGame` enforces legality move by move and counts
``q`` (I/O moves) — the quantity the lower bounds constrain.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

from repro.pebbling.graph import ComputationGraph
from repro.util.validation import check_positive

__all__ = ["MoveKind", "Move", "IllegalMoveError", "RedBluePebbleGame", "replay"]


class MoveKind(Enum):
    """The four rules of the game."""

    REMOVE_RED = "remove_red"
    REMOVE_BLUE = "remove_blue"
    READ = "read"  # rule 2: blue -> red   (I/O)
    WRITE = "write"  # rule 3: red -> blue  (I/O)
    COMPUTE = "compute"  # rule 4


@dataclass(frozen=True)
class Move:
    """One move: a rule applied to a vertex."""

    kind: MoveKind
    vertex: int

    def is_io(self) -> bool:
        """Whether this is a rule-2/3 I/O move (read or write)."""
        return self.kind in (MoveKind.READ, MoveKind.WRITE)


class IllegalMoveError(RuntimeError):
    """A move violated the game rules or the red-pebble budget."""


class RedBluePebbleGame:
    """Game state + legality enforcement + I/O accounting.

    Parameters
    ----------
    graph:
        The DAG to pebble (an LGCA computation graph).
    storage:
        S — the red-pebble budget (processor storage in site values).

    The starting configuration blue-pebbles the inputs (the paper's
    initial condition); blue pebbles are unlimited.
    """

    def __init__(self, graph: ComputationGraph, storage: int):
        self.graph = graph
        self.storage = check_positive(storage, "storage", integer=True)
        self.red: set[int] = set()
        self.blue: set[int] = set(int(v) for v in graph.inputs())
        self.io_moves = 0
        self.compute_moves = 0
        self.computed: set[int] = set()
        self.history: list[Move] = []

    # -- queries -----------------------------------------------------------------

    @property
    def red_count(self) -> int:
        """Red pebbles currently on the board."""
        return len(self.red)

    def is_red(self, v: int) -> bool:
        """Whether ``v`` holds a red (processor-storage) pebble."""
        return v in self.red

    def is_blue(self, v: int) -> bool:
        """Whether ``v`` holds a blue (main-memory) pebble."""
        return v in self.blue

    def goal_reached(self) -> bool:
        """All outputs blue-pebbled (the complete-computation goal)."""
        return all(int(v) in self.blue for v in self.graph.outputs())

    # -- moves -------------------------------------------------------------------

    def read(self, v: int) -> None:
        """Rule 2: place a red pebble on a blue-pebbled vertex."""
        v = int(v)
        if v not in self.blue:
            raise IllegalMoveError(f"read({v}): vertex has no blue pebble")
        if v in self.red:
            raise IllegalMoveError(f"read({v}): vertex already red (wasted I/O)")
        if len(self.red) >= self.storage:
            raise IllegalMoveError(
                f"read({v}): all {self.storage} red pebbles in use"
            )
        self.red.add(v)
        self.io_moves += 1
        self.history.append(Move(MoveKind.READ, v))

    def write(self, v: int) -> None:
        """Rule 3: place a blue pebble on a red-pebbled vertex."""
        v = int(v)
        if v not in self.red:
            raise IllegalMoveError(f"write({v}): vertex has no red pebble")
        if v in self.blue:
            raise IllegalMoveError(f"write({v}): vertex already blue (wasted I/O)")
        self.blue.add(v)
        self.io_moves += 1
        self.history.append(Move(MoveKind.WRITE, v))

    def compute(self, v: int) -> None:
        """Rule 4: red-pebble v, all of whose predecessors are red.

        Inputs (no predecessors) cannot be computed — they must be read.
        """
        v = int(v)
        preds = self.graph.predecessors(v)
        if preds.size == 0:
            raise IllegalMoveError(f"compute({v}): vertex is an input")
        if v in self.red:
            raise IllegalMoveError(f"compute({v}): vertex already red")
        missing = [int(u) for u in preds if int(u) not in self.red]
        if missing:
            raise IllegalMoveError(
                f"compute({v}): predecessors {missing[:5]} not red-pebbled"
            )
        if len(self.red) >= self.storage:
            raise IllegalMoveError(
                f"compute({v}): all {self.storage} red pebbles in use"
            )
        self.red.add(v)
        self.compute_moves += 1
        self.computed.add(v)
        self.history.append(Move(MoveKind.COMPUTE, v))

    def remove_red(self, v: int) -> None:
        """Rule 1 (red half): free a red pebble."""
        v = int(v)
        if v not in self.red:
            raise IllegalMoveError(f"remove_red({v}): vertex not red")
        self.red.discard(v)
        self.history.append(Move(MoveKind.REMOVE_RED, v))

    def remove_blue(self, v: int) -> None:
        """Rule 1 (blue half): discard a main-memory value."""
        v = int(v)
        if v not in self.blue:
            raise IllegalMoveError(f"remove_blue({v}): vertex not blue")
        self.blue.discard(v)
        self.history.append(Move(MoveKind.REMOVE_BLUE, v))

    def apply(self, move: Move) -> None:
        """Dispatch a :class:`Move`."""
        if move.kind is MoveKind.READ:
            self.read(move.vertex)
        elif move.kind is MoveKind.WRITE:
            self.write(move.vertex)
        elif move.kind is MoveKind.COMPUTE:
            self.compute(move.vertex)
        elif move.kind is MoveKind.REMOVE_RED:
            self.remove_red(move.vertex)
        elif move.kind is MoveKind.REMOVE_BLUE:
            self.remove_blue(move.vertex)
        else:  # pragma: no cover - enum is exhaustive
            raise IllegalMoveError(f"unknown move kind {move.kind}")

    # -- convenience --------------------------------------------------------------

    def evict_lru_like(self, keep: Iterable[int]) -> None:
        """Remove all red pebbles except those in ``keep`` (bulk rule 1)."""
        keep_set = {int(v) for v in keep}
        for v in list(self.red):
            if v not in keep_set:
                self.remove_red(v)


def replay(
    graph: ComputationGraph, storage: int, moves: Sequence[Move]
) -> RedBluePebbleGame:
    """Replay a move sequence, enforcing legality; returns the end state.

    Raises :class:`IllegalMoveError` on the first illegal move — this is
    how schedule generators are validated.
    """
    game = RedBluePebbleGame(graph, storage)
    for move in moves:
        game.apply(move)
    return game
